"""The simulated control-plane transport: a routed message fabric.

Implements :class:`repro.core.transport.ControlPlaneTransport` on top of
the discrete-event scheduler as **one** generic delivery path for every
typed control message (:mod:`repro.core.messages`): PCBs, revocations and
path registrations sent over a link all flow through
:meth:`SimulatedTransport.send_message`, which applies per-hop latency
(link propagation + processing overhead), :class:`LinkState` loss at both
send and delivery time, and per-kind metrics uniformly — where the
pre-fabric transport kept one hand-rolled copy of that logic per message
type.

Delivered messages are not handed to the receiving control service one by
one: they land in a **per-AS inbox** that is drained in batches at the
scheduler tick they arrived on.  Every entry of a drained batch therefore
shares its arrival timestamp, so database state and withdrawal
(``applied_at``) timestamps are bit-identical to per-message delivery
(``batch_size=1``) — pinned by the dispatch-equivalence property tests —
while the batch lets the control service amortize work across messages
(e.g. one admission per duplicate beacon group, see
:func:`repro.core.control_service.dispatch_batch`).

Returned pull beacons travel back to their origin with the accumulated
latency of the path they describe, and algorithm fetches cost one round
trip over that same path; both predate the fabric and keep their
path-travel (not link-routed) delivery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.beacon import Beacon
from repro.core.messages import ControlMessage, PCBMessage
from repro.exceptions import (
    AlgorithmError,
    ConfigurationError,
    SimulationError,
    UnknownASError,
)
from repro.simulation.collector import MetricsCollector
from repro.simulation.engine import EventScheduler
from repro.simulation.failures import LinkState
from repro.topology.graph import Topology


class _Inbox:
    """One AS's pending delivered-but-undrained messages.

    A plain slotted class on the delivery fast path: every message pays
    one append here, and floods push millions of them.
    """

    __slots__ = ("entries", "drain_scheduled", "draining")

    def __init__(self) -> None:
        #: (message, arrival_interface) in arrival order.
        self.entries: List[Tuple[ControlMessage, int]] = []
        #: Whether a drain event is already queued for this inbox.
        self.drain_scheduled = False
        #: Re-entrancy guard for synchronous (immediate) drains.
        self.draining = False


@dataclass
class SimulatedTransport:
    """Scheduler-driven message fabric between control services.

    Attributes:
        topology: The global topology (used to resolve links and delays).
        scheduler: The discrete-event scheduler driving delivery.
        collector: Transmission counters for the overhead evaluation.
        processing_delay_ms: Fixed per-hop control-plane processing delay
            added to the link propagation delay.
        deliver_immediately: When set, messages are delivered and
            dispatched synchronously instead of being scheduled; used by
            tests that do not care about timing.
        link_state: Live link/AS availability (dynamic scenarios).  Checked
            both when a message is sent and when it would be delivered, so
            a link failing mid-flight loses the messages currently on it.
            When ``None`` every link is always available (static
            scenarios).
        batch_size: Maximum messages handed to a control service per inbox
            drain.  ``None`` (the default) drains everything pending at
            the tick; ``1`` is per-message delivery, the behavioural
            reference the equivalence tests compare against.
    """

    topology: Topology
    scheduler: EventScheduler
    collector: MetricsCollector = field(default_factory=MetricsCollector)
    processing_delay_ms: float = 1.0
    deliver_immediately: bool = False
    link_state: Optional[LinkState] = None
    batch_size: Optional[int] = None
    services: Dict[int, object] = field(default_factory=dict)
    _inboxes: Dict[int, _Inbox] = field(default_factory=dict)
    _sequence: "itertools.count" = field(default_factory=lambda: itertools.count(1))
    #: (sender_as, egress_interface) → (link key, link latency, remote AS,
    #: remote interface, remote inbox).  The topology's link set is fixed
    #: for a simulation's lifetime (churn toggles availability, it never
    #: adds links), so egress resolution is memoized — the flood fast path
    #: pays one dict hit instead of a link lookup + endpoint resolution
    #: per message.
    _routes: Dict[Tuple[int, int], tuple] = field(default_factory=dict)
    #: Pre-bound per-AS drain callbacks (no per-tick lambda allocation).
    _drain_callbacks: Dict[int, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be None or >= 1, got {self.batch_size}"
            )

    def register(self, service: object) -> None:
        """Register a control service under its AS identifier."""
        as_id = service.as_id
        self.services[as_id] = service
        self._inboxes[as_id] = _Inbox()
        self._drain_callbacks[as_id] = (
            lambda now_ms, _as_id=as_id: self._drain(_as_id, now_ms)
        )
        self._routes.clear()  # routes close over inboxes; rebuild lazily

    def service_of(self, as_id: int) -> object:
        """Return the registered control service of ``as_id``."""
        service = self.services.get(as_id)
        if service is None:
            raise UnknownASError(as_id)
        return service

    # ------------------------------------------------------------------
    # the routed fabric
    # ------------------------------------------------------------------
    def _route(self, sender_as: int, egress_interface: int) -> tuple:
        """Resolve (and memoize) the egress endpoint's delivery route."""
        endpoint = (sender_as, egress_interface)
        route = self._routes.get(endpoint)
        if route is None:
            link = self.topology.link_of_interface(endpoint)
            remote_as, remote_interface = link.other_end(endpoint)
            self.service_of(remote_as)  # fail fast on unknown receivers
            route = (
                link.key,
                link.latency_ms,
                remote_as,
                remote_interface,
                self._inboxes[remote_as],
            )
            self._routes[endpoint] = route
        return route

    def send_message(
        self, sender_as: int, egress_interface: int, message: ControlMessage
    ) -> None:
        """Deliver ``message`` to the AS at the far end of the egress link.

        The one delivery path every link-routed message type shares:
        resolve the link, record the transmission (by message kind), drop
        if the link is unavailable now or at delivery time (PCBs
        additionally require their own advertised path to still be up —
        a beacon crossing a link that failed while it was in flight must
        not re-poison the databases the revocation flood just purged),
        pay ``link latency + processing delay``, and enqueue into the
        receiver's inbox for the batched drain at the arrival tick.
        """
        route = self._routes.get((sender_as, egress_interface))
        if route is None:
            route = self._route(sender_as, egress_interface)
        link_key, latency_ms, remote_as, remote_interface, inbox = route
        kind = message.kind
        now_ms = self.scheduler.now_ms
        if kind == "pcb":
            self.collector.record_send(sender_as, egress_interface, now_ms)
        elif kind == "revocation":
            self.collector.record_revocation(sender_as, egress_interface, now_ms)
        elif kind == "path_registration":
            self.collector.record_registration(sender_as, egress_interface, now_ms)
        else:
            # An unknown kind must fail loudly: silently mis-binning it
            # would corrupt the overhead accounting (Figure 8c) without
            # any error.  A new message type adds its recorder here.
            raise SimulationError(
                f"message kind {kind!r} has no metrics recorder; "
                "register it in SimulatedTransport.send_message"
            )

        if (
            self.link_state is not None
            and self.link_state.impaired()
            and not self.link_state.link_key_available(link_key)
        ):
            self._record_drop(message, now_ms)
            return

        def deliver(
            now_ms: float,
            _message=message,
            _remote_as=remote_as,
            _interface=remote_interface,
            _link_key=link_key,
            _inbox=inbox,
            _track=message.needs_hop_tracking(),
        ):
            if self.link_state is not None and self.link_state.impaired():
                if not self.link_state.link_key_available(_link_key):
                    self._record_drop(_message, now_ms)
                    return
                if isinstance(_message, PCBMessage) and not self.link_state.path_available(
                    _message.beacon.links()
                ):
                    self._record_drop(_message, now_ms)
                    return
            if _track:
                _message = _message.with_hop(_remote_as)
            _inbox.entries.append((_message, _interface))
            if self.deliver_immediately:
                # Synchronous mode: drain right away unless a drain higher
                # up the call stack is already consuming this inbox.
                if not _inbox.draining:
                    self._drain(_remote_as, now_ms)
            elif not _inbox.drain_scheduled:
                _inbox.drain_scheduled = True
                self.scheduler.schedule_at(now_ms, self._drain_callbacks[_remote_as])

        if self.deliver_immediately:
            deliver(now_ms + latency_ms + self.processing_delay_ms)
        else:
            self.scheduler.schedule_in(
                latency_ms + self.processing_delay_ms, deliver
            )

    def _drain(self, as_id: int, now_ms: float) -> None:
        """Hand the inbox's pending messages to the control service.

        Drains run at the same scheduler tick the messages arrived on —
        the drain event is scheduled at the arrival timestamp, and
        messages arriving at a later tick schedule their own drain — so
        every entry of a batch shares ``now_ms`` with its per-message
        delivery time.  With a finite :attr:`batch_size` the handler is
        invoked repeatedly with at most that many entries per call, still
        within this tick.
        """
        inbox = self._inboxes[as_id]
        inbox.drain_scheduled = False
        if inbox.draining or not inbox.entries:
            return
        service = self.services[as_id]
        inbox.draining = True
        try:
            entries = inbox.entries
            if self.batch_size is None and not self.deliver_immediately:
                # Scheduled-mode fast path: handlers cannot enqueue into
                # this inbox synchronously, so one swap hands over the
                # whole tick's batch without re-checking the list.
                inbox.entries = []
                service.on_message_batch(entries, now_ms)
                return
            while inbox.entries:
                if self.batch_size is None:
                    batch, inbox.entries = inbox.entries, []
                else:
                    batch = inbox.entries[: self.batch_size]
                    del inbox.entries[: self.batch_size]
                service.on_message_batch(batch, now_ms)
        finally:
            inbox.draining = False

    def pending_messages(self, as_id: int) -> int:
        """Return how many delivered messages await draining at ``as_id``."""
        inbox = self._inboxes.get(as_id)
        return len(inbox.entries) if inbox is not None else 0

    # ------------------------------------------------------------------
    # per-kind metrics routing
    # ------------------------------------------------------------------
    def _record_drop(self, message: ControlMessage, now_ms: float) -> None:
        if message.kind == "revocation":
            self.collector.record_revocation_drop(now_ms)
        elif message.kind == "pcb":
            self.collector.record_drop(now_ms)
        elif message.kind == "path_registration":
            self.collector.record_registration_drop(now_ms)
        else:  # unreachable: send_message rejected the kind already
            raise SimulationError(f"message kind {message.kind!r} has no drop recorder")

    # ------------------------------------------------------------------
    # ControlPlaneTransport compatibility wrappers
    # ------------------------------------------------------------------
    def send_beacon(self, sender_as: int, egress_interface: int, beacon: Beacon) -> None:
        """Frame ``beacon`` as a :class:`PCBMessage` and send it."""
        self.send_message(
            sender_as,
            egress_interface,
            PCBMessage(
                origin_as=beacon.origin_as,
                sequence=next(self._sequence),
                created_at_ms=self.scheduler.now_ms,
                beacon=beacon,
            ),
        )

    def send_revocation(self, sender_as: int, egress_interface: int, revocation) -> None:
        """Send a revocation message (already a typed control message)."""
        self.send_message(sender_as, egress_interface, revocation)

    # ------------------------------------------------------------------
    # path-travel deliveries (not link-routed)
    # ------------------------------------------------------------------
    def return_beacon_to_origin(self, sender_as: int, beacon: Beacon) -> None:
        """Return a terminated pull beacon to its origin over the beacon's path."""
        origin = self.service_of(beacon.origin_as)
        self.collector.record_return(sender_as, self.scheduler.now_ms)
        delay_ms = beacon.total_latency_ms() + self.processing_delay_ms

        def deliver(now_ms: float, _origin=origin, _beacon=beacon):
            # The return travels over the beacon's own path; it is lost if
            # any of those links is unavailable when it would arrive.
            if (
                self.link_state is not None
                and self.link_state.impaired()
                and not self.link_state.path_available(_beacon.links())
            ):
                self.collector.record_drop(now_ms)
                return
            _origin.receive_returned_beacon(_beacon, now_ms=now_ms)

        if self.deliver_immediately:
            deliver(self.scheduler.now_ms + delay_ms)
        else:
            self.scheduler.schedule_in(delay_ms, deliver)

    def fetch_algorithm(self, requester_as: int, origin_as: int, algorithm_id: str) -> bytes:
        """Fetch an on-demand payload from the origin AS's control service.

        The fetch is synchronous (the RAC blocks on it), but the collector
        records it so benchmarks can report fetch counts and the caching
        behaviour.
        """
        origin = self.service_of(origin_as)
        if self.link_state is not None and not self.link_state.is_as_up(origin_as):
            # AlgorithmError (not SimulationError) so the RAC round records
            # a failed bucket and the simulation continues — an unreachable
            # origin must not abort the whole run.
            raise AlgorithmError(
                f"AS {origin_as} is offline and cannot serve algorithm {algorithm_id!r}"
            )
        self.collector.record_algorithm_fetch()
        serve = getattr(origin, "serve_algorithm", None)
        if serve is None:
            raise SimulationError(f"AS {origin_as} cannot serve on-demand algorithms")
        return serve(algorithm_id)
