"""The simulated control-plane transport.

Implements :class:`repro.core.transport.ControlPlaneTransport` on top of the
discrete-event scheduler: PCBs sent over a link are delivered to the far
end's control service after the link's propagation delay (plus a small
configurable processing overhead), returned pull beacons travel back to
their origin with the accumulated latency of the path they describe, and
algorithm fetches cost one round trip over that same path.  Every
transmission is reported to the :class:`MetricsCollector`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.beacon import Beacon
from repro.core.transport import ControlPlaneTransport
from repro.exceptions import AlgorithmError, SimulationError, UnknownASError
from repro.simulation.collector import MetricsCollector
from repro.simulation.engine import EventScheduler
from repro.simulation.failures import LinkState
from repro.topology.graph import Topology


@dataclass
class SimulatedTransport:
    """Scheduler-driven transport between control services.

    Attributes:
        topology: The global topology (used to resolve links and delays).
        scheduler: The discrete-event scheduler driving delivery.
        collector: Transmission counters for the overhead evaluation.
        processing_delay_ms: Fixed per-hop control-plane processing delay
            added to the link propagation delay.
        deliver_immediately: When set, messages are delivered synchronously
            instead of being scheduled; used by tests that do not care about
            timing.
        link_state: Live link/AS availability (dynamic scenarios).  Checked
            both when a PCB is sent and when it would be delivered, so a
            link failing mid-flight loses the PCBs currently on it.  When
            ``None`` every link is always available (static scenarios).
    """

    topology: Topology
    scheduler: EventScheduler
    collector: MetricsCollector = field(default_factory=MetricsCollector)
    processing_delay_ms: float = 1.0
    deliver_immediately: bool = False
    link_state: Optional[LinkState] = None
    services: Dict[int, object] = field(default_factory=dict)

    def register(self, service: object) -> None:
        """Register a control service under its AS identifier."""
        self.services[service.as_id] = service

    def service_of(self, as_id: int) -> object:
        """Return the registered control service of ``as_id``."""
        service = self.services.get(as_id)
        if service is None:
            raise UnknownASError(as_id)
        return service

    # ------------------------------------------------------------------
    # ControlPlaneTransport implementation
    # ------------------------------------------------------------------
    def send_beacon(self, sender_as: int, egress_interface: int, beacon: Beacon) -> None:
        """Deliver ``beacon`` to the AS at the far end of the egress link.

        With a :class:`LinkState` attached, the PCB is lost (counted as a
        drop) if the link is unavailable now or at delivery time.
        """
        link = self.topology.link_of_interface((sender_as, egress_interface))
        remote_as, remote_interface = link.other_end((sender_as, egress_interface))
        receiver = self.service_of(remote_as)
        self.collector.record_send(sender_as, egress_interface, self.scheduler.now_ms)

        if (
            self.link_state is not None
            and self.link_state.impaired()
            and not self.link_state.link_key_available(link.key)
        ):
            self.collector.record_drop(self.scheduler.now_ms)
            return

        delay_ms = link.latency_ms + self.processing_delay_ms

        def deliver(
            now_ms: float,
            _receiver=receiver,
            _beacon=beacon,
            _interface=remote_interface,
            _link_key=link.key,
        ):
            # Both the delivery link and the beacon's own path must still be
            # up: a beacon crossing a link that failed while it was in
            # flight must not re-poison the databases the invalidation
            # flood just purged.
            if (
                self.link_state is not None
                and self.link_state.impaired()
                and (
                    not self.link_state.link_key_available(_link_key)
                    or not self.link_state.path_available(_beacon.links())
                )
            ):
                self.collector.record_drop(now_ms)
                return
            _receiver.receive_beacon(_beacon, on_interface=_interface, now_ms=now_ms)

        if self.deliver_immediately:
            deliver(self.scheduler.now_ms + delay_ms)
        else:
            self.scheduler.schedule_in(delay_ms, deliver)

    def send_revocation(self, sender_as: int, egress_interface: int, revocation) -> None:
        """Deliver ``revocation`` to the AS at the far end of the egress link.

        Revocations travel exactly like PCBs — one hop at a time, paying
        the link's propagation delay plus the processing overhead — and are
        recorded separately from PCB sends so the overhead accounting
        counts each revocation message exactly once.  A revocation whose
        carrying link is unavailable now or at delivery time is lost
        (e.g. a revocation for one failed link crossing another failed
        link): the far side then only learns of the failure over some other
        path, or never.
        """
        link = self.topology.link_of_interface((sender_as, egress_interface))
        remote_as, remote_interface = link.other_end((sender_as, egress_interface))
        receiver = self.service_of(remote_as)
        self.collector.record_revocation(sender_as, egress_interface, self.scheduler.now_ms)

        if (
            self.link_state is not None
            and self.link_state.impaired()
            and not self.link_state.link_key_available(link.key)
        ):
            self.collector.record_revocation_drop(self.scheduler.now_ms)
            return

        delay_ms = link.latency_ms + self.processing_delay_ms

        def deliver(
            now_ms: float,
            _receiver=receiver,
            _revocation=revocation,
            _interface=remote_interface,
            _link_key=link.key,
        ):
            if (
                self.link_state is not None
                and self.link_state.impaired()
                and not self.link_state.link_key_available(_link_key)
            ):
                self.collector.record_revocation_drop(now_ms)
                return
            _receiver.on_revocation(_revocation, on_interface=_interface, now_ms=now_ms)

        if self.deliver_immediately:
            deliver(self.scheduler.now_ms + delay_ms)
        else:
            self.scheduler.schedule_in(delay_ms, deliver)

    def return_beacon_to_origin(self, sender_as: int, beacon: Beacon) -> None:
        """Return a terminated pull beacon to its origin over the beacon's path."""
        origin = self.service_of(beacon.origin_as)
        self.collector.record_return(sender_as, self.scheduler.now_ms)
        delay_ms = beacon.total_latency_ms() + self.processing_delay_ms

        def deliver(now_ms: float, _origin=origin, _beacon=beacon):
            # The return travels over the beacon's own path; it is lost if
            # any of those links is unavailable when it would arrive.
            if (
                self.link_state is not None
                and self.link_state.impaired()
                and not self.link_state.path_available(_beacon.links())
            ):
                self.collector.record_drop(now_ms)
                return
            _origin.receive_returned_beacon(_beacon, now_ms=now_ms)

        if self.deliver_immediately:
            deliver(self.scheduler.now_ms + delay_ms)
        else:
            self.scheduler.schedule_in(delay_ms, deliver)

    def fetch_algorithm(self, requester_as: int, origin_as: int, algorithm_id: str) -> bytes:
        """Fetch an on-demand payload from the origin AS's control service.

        The fetch is synchronous (the RAC blocks on it), but the collector
        records it so benchmarks can report fetch counts and the caching
        behaviour.
        """
        origin = self.service_of(origin_as)
        if self.link_state is not None and not self.link_state.is_as_up(origin_as):
            # AlgorithmError (not SimulationError) so the RAC round records
            # a failed bucket and the simulation continues — an unreachable
            # origin must not abort the whole run.
            raise AlgorithmError(
                f"AS {origin_as} is offline and cannot serve algorithm {algorithm_id!r}"
            )
        self.collector.record_algorithm_fetch()
        serve = getattr(origin, "serve_algorithm", None)
        if serve is None:
            raise SimulationError(f"AS {origin_as} cannot serve on-demand algorithms")
        return serve(algorithm_id)
