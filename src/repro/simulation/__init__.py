"""Discrete-event simulation substrate (the ns-3 replacement).

The paper evaluates IREC with an ns-3 based SCION simulator on a 500-AS
topology.  This package provides the equivalent machinery in pure Python:

* :mod:`repro.simulation.engine` — a deterministic discrete-event scheduler,
* :mod:`repro.simulation.network` — the simulated control-plane transport
  that delivers PCBs with per-link propagation delay and records every
  transmission for the overhead analysis,
* :mod:`repro.simulation.collector` — per-interface, per-period PCB
  counters and other measurement hooks,
* :mod:`repro.simulation.scenario` — declarative description of which
  algorithms run in which ASes (the paper's 1SP/5SP/HD/DO/PD setups), and
* :mod:`repro.simulation.beaconing` — the periodic beaconing driver that
  originates PCBs, delivers them and runs every AS's RACs each period.
"""

from repro.simulation.beaconing import BeaconingSimulation, SimulationResult
from repro.simulation.collector import MetricsCollector
from repro.simulation.engine import EventScheduler
from repro.simulation.failures import LinkFailureInjector
from repro.simulation.network import SimulatedTransport
from repro.simulation.scenario import (
    AlgorithmSpec,
    ScenarioConfig,
    paper_algorithm_suite,
)

__all__ = [
    "AlgorithmSpec",
    "BeaconingSimulation",
    "EventScheduler",
    "LinkFailureInjector",
    "MetricsCollector",
    "ScenarioConfig",
    "SimulatedTransport",
    "SimulationResult",
    "paper_algorithm_suite",
]
