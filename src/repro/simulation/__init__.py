"""Discrete-event simulation substrate (the ns-3 replacement).

The paper evaluates IREC with an ns-3 based SCION simulator on a 500-AS
topology.  This package provides the equivalent machinery in pure Python:

* :mod:`repro.simulation.engine` — a deterministic discrete-event scheduler,
* :mod:`repro.simulation.network` — the simulated control-plane transport
  that delivers PCBs with per-link propagation delay and records every
  transmission for the overhead analysis,
* :mod:`repro.simulation.collector` — per-interface, per-period PCB
  counters and other measurement hooks,
* :mod:`repro.simulation.scenario` — declarative description of which
  algorithms run in which ASes (the paper's 1SP/5SP/HD/DO/PD setups),
* :mod:`repro.simulation.events` — typed dynamic events (link failures,
  churn, policy/RAC swaps, period changes), the timeline builder DSL and
  seeded random failure/churn generators, and
* :mod:`repro.simulation.beaconing` — the periodic beaconing driver that
  originates PCBs, delivers them, runs every AS's RACs each period, applies
  the scenario timeline and measures convergence of watched AS pairs.
"""

from repro.simulation.beaconing import BeaconingSimulation, SimulationResult
from repro.simulation.collector import (
    ConvergenceCollector,
    DisruptionRecord,
    MetricsCollector,
)
from repro.simulation.engine import EventScheduler
from repro.simulation.events import (
    ASJoin,
    ASLeave,
    BeaconPeriodChange,
    LinkFailure,
    LinkRecovery,
    PolicySwap,
    RACSwap,
    ScenarioTimeline,
    TimedEvent,
    random_churn,
    random_link_failures,
)
from repro.simulation.failures import LinkFailureInjector, LinkState
from repro.simulation.network import SimulatedTransport
from repro.simulation.scenario import (
    AlgorithmSpec,
    ScenarioConfig,
    paper_algorithm_suite,
)

__all__ = [
    "ASJoin",
    "ASLeave",
    "AlgorithmSpec",
    "BeaconPeriodChange",
    "BeaconingSimulation",
    "ConvergenceCollector",
    "DisruptionRecord",
    "EventScheduler",
    "LinkFailure",
    "LinkFailureInjector",
    "LinkRecovery",
    "LinkState",
    "MetricsCollector",
    "PolicySwap",
    "RACSwap",
    "ScenarioConfig",
    "ScenarioTimeline",
    "SimulatedTransport",
    "SimulationResult",
    "TimedEvent",
    "paper_algorithm_suite",
    "random_churn",
    "random_link_failures",
]
