"""The periodic beaconing driver.

This module glues the topology, the control services and the simulated
transport into the experiment the paper runs: every AS originates PCBs and
runs its RACs once per propagation interval (ten simulated minutes), PCBs
travel with link propagation delays, and after a configurable number of
periods the registered paths and transmission counts are available for the
Figure-8 analyses.

The driver also hosts pull-based disjointness orchestrators, advancing them
after every period so that the PD experiment can run inside the same
simulation.

Dynamic scenarios add a timeline of typed events
(:mod:`repro.simulation.events`) that the driver schedules on its
discrete-event scheduler, so a link failure scheduled mid-period really
interrupts propagation: in-flight PCBs on the link are lost, the ASes
adjacent to the failure originate signed
:class:`~repro.core.revocation.RevocationMessage`\\ s that flood hop-by-hop
through the simulated transport (each AS withdraws state crossing the
failed element when the revocation *arrives*, then re-forwards it), and
the :class:`~repro.simulation.collector.ConvergenceCollector` measures how
watched AS pairs recover over the following periods — with withdrawal
timing now topology-dependent instead of instantaneous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.control_service import ControlServiceConfig, IrecControlService, RoundReport
from repro.core.local_view import LocalTopologyView
from repro.core.messages import RevocationMessage
from repro.core.pull import PullBasedDisjointnessOrchestrator, PullState
from repro.crypto.keys import KeyStore
from repro.exceptions import ConfigurationError, SimulationError, UnknownASError
from repro.obs import spans as _spans
from repro.scion.legacy import LegacyControlService
from repro.simulation.collector import ConvergenceCollector, MetricsCollector
from repro.simulation.engine import EventScheduler
from repro.simulation.events import (
    ASJoin,
    ASLeave,
    BeaconFlood,
    BeaconPeriodChange,
    ForwardingSuppression,
    GrayFailure,
    GrayRecovery,
    LinkFailure,
    LinkFlap,
    LinkRecovery,
    PolicySwap,
    RACSwap,
    RevocationForgery,
    RevocationReplay,
    ServiceRateChange,
    TimedEvent,
    TopologyGrowth,
)
from repro.simulation.failures import LinkState
from repro.simulation.network import SimulatedTransport
from repro.simulation.scenario import AlgorithmSpec, ScenarioConfig
from repro.topology.entities import ASInfo, Interface, Link
from repro.topology.geo import GeoCoordinate
from repro.topology.graph import Topology
from repro.topology.intra_domain import IntraDomainRegistry

#: A control service of either flavour.
AnyControlService = Union[IrecControlService, LegacyControlService]


@dataclass
class ShardContext:
    """Marks a :class:`BeaconingSimulation` as one shard of a sharded run.

    A shard materializes control services only for the ASes it owns and
    hands every fabric send towards a non-owned AS to ``exporter`` (the
    coordinator routes it to the owning shard, which replays the receiver
    side via
    :meth:`~repro.simulation.network.SimulatedTransport.inject_import`).
    Timeline events are *not* self-scheduled in shard mode: the
    coordinator drives them as global barriers so probes and the
    aggregated revocation flush see a consistent cross-shard state.

    Attributes:
        owned_ases: AS ids whose control services this shard runs.  The
            coordinator may add grown ASes mid-run.
        exporter: Sink for cross-shard fabric sends; receives the
            serialized-delivery tuples documented on the transport's
            ``exporter`` attribute.
    """

    owned_ases: Set[int]
    exporter: Callable[[tuple], None]


@dataclass
class SimulationResult:
    """Everything a finished simulation exposes to the analysis code."""

    topology: Topology
    services: Dict[int, AnyControlService]
    collector: MetricsCollector
    round_reports: List[RoundReport] = field(default_factory=list)
    periods_run: int = 0
    final_time_ms: float = 0.0
    convergence: ConvergenceCollector = field(default_factory=ConvergenceCollector)
    link_state: LinkState = field(default_factory=LinkState)

    def service(self, as_id: int) -> AnyControlService:
        """Return the control service of ``as_id``."""
        try:
            return self.services[as_id]
        except KeyError:
            raise UnknownASError(as_id) from None

    def registered_paths(self, at_as: int, origin_as: int):
        """Return the paths registered at ``at_as`` towards ``origin_as``."""
        return self.service(at_as).path_service.paths_to(origin_as)


class BeaconingSimulation:
    """Drives periodic beaconing over a topology according to a scenario."""

    def __init__(
        self,
        topology: Topology,
        scenario: ScenarioConfig,
        key_store: Optional[KeyStore] = None,
        intra_domain: Optional[IntraDomainRegistry] = None,
        shard: Optional[ShardContext] = None,
    ) -> None:
        self.topology = topology
        self.scenario = scenario
        self.shard = shard
        self.key_store = key_store or KeyStore()
        self.intra_domain = intra_domain or IntraDomainRegistry()
        self.scheduler = EventScheduler()
        self.collector = MetricsCollector(period_ms=scenario.propagation_interval_ms)
        self.link_state = LinkState()
        self.convergence = ConvergenceCollector()
        for as_id in scenario.inbox_profiles:
            if as_id not in topology:
                raise ConfigurationError(
                    f"inbox_profiles targets unknown AS {as_id}"
                )
        self.transport = SimulatedTransport(
            topology=topology,
            scheduler=self.scheduler,
            collector=self.collector,
            processing_delay_ms=scenario.processing_delay_ms,
            link_state=self.link_state,
            batch_size=scenario.inbox_batch_size,
            inbox_profile=scenario.inbox_profile,
            inbox_profiles=dict(scenario.inbox_profiles),
            loss_seed=scenario.loss_seed,
            exporter=shard.exporter if shard is not None else None,
        )
        self.services: Dict[int, AnyControlService] = {}
        self.orchestrators: List[PullBasedDisjointnessOrchestrator] = []
        self.round_reports: List[RoundReport] = []
        self.watched_pairs: List[Tuple[int, int]] = []
        #: Callbacks ``(event, now_ms)`` invoked after a timeline event has
        #: been applied; the traffic engine subscribes here so failures
        #: break active flows the instant they fire.
        self.event_listeners: List = []
        #: Callbacks ``(as_id, message, removed, now_ms)`` invoked when a
        #: revocation message withdraws state at one AS — i.e. when the
        #: flood *reaches* that AS, not when the failure fired.  The
        #: traffic engine subscribes here to break flows at withdrawal
        #: time.
        self.revocation_listeners: List = []
        #: Callbacks ``(now_ms,)`` invoked at the end of every completed
        #: beaconing period — the observatory's time-series sampler hook.
        #: Fired once per period (never on a message path) and after all
        #: convergence/overload bookkeeping, so listeners observe the
        #: period's final state and cannot perturb golden traces.
        self.period_listeners: List = []
        self._periods_run = 0
        self._interval_ms = scenario.propagation_interval_ms
        self._next_period_start_ms = 0.0
        self._horizon_reached = False
        self._deferred_events: List[TimedEvent] = []
        #: Failures queued by same-tick events for aggregated revocation
        #: origination: one flush per tick batches co-owned failures into
        #: multi-element messages (one flood per origin, not per element).
        self._pending_failed_links: List[Tuple] = []
        self._pending_failed_ases: List[int] = []
        #: time_ms → scheduled timeline events not yet applied at that
        #: time; the flush runs when the last same-time event finishes.
        self._scheduled_event_counts: Dict[float, int] = {}
        self._applying_deferred = False
        #: (dropped, marked, deferred) totals at the last period boundary,
        #: for per-period overload trace deltas.
        self._overload_snapshot = (0, 0, 0)
        #: Per-AS deployed RAC specs, kept in sync by RACSwap so a churned
        #: AS can be cold-restarted with its *current* deployment.
        self._deployed_specs: Dict[int, Dict[str, AlgorithmSpec]] = {}
        self._build_services()
        if shard is None:
            self._schedule_timeline()
        # In shard mode the coordinator validates the timeline once and
        # drives every event as a cross-shard barrier, so the shard never
        # self-schedules (or defers) timeline events.

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_services(self) -> None:
        for as_info in self.topology:
            if self.shard is None or as_info.as_id in self.shard.owned_ases:
                self._build_service(as_info)

    def _build_service(self, as_info: ASInfo) -> AnyControlService:
        """Build, wire and register the control service of one AS.

        Shared by initial construction and mid-run growth churn
        (:class:`~repro.simulation.events.TopologyGrowth`), so a grown AS
        gets exactly the deployment a founding AS would.
        """
        view = LocalTopologyView.from_topology(
            self.topology,
            as_info.as_id,
            intra_domain=self.intra_domain.model_for(as_info),
        )
        if as_info.as_id in set(self.scenario.legacy_ases):
            service: AnyControlService = LegacyControlService(
                view=view,
                key_store=self.key_store,
                transport=self.transport,
                verify_signatures=self.scenario.verify_signatures,
            )
        else:
            service = IrecControlService(
                view=view,
                key_store=self.key_store,
                transport=self.transport,
                grouping_policy=self.scenario.grouping_policy,
                config=ControlServiceConfig(
                    verify_signatures=self.scenario.verify_signatures,
                    revocation_dedup_window_ms=self.scenario.revocation_dedup_window_ms,
                    register_down_segments=self.scenario.register_down_segments,
                ),
            )
            specs = self._deployed_specs.setdefault(as_info.as_id, {})
            for spec in self.scenario.algorithms:
                self._install_rac(service, spec)
                specs[spec.rac_id] = spec
        service.revocations.dedup_window_ms = self.scenario.revocation_dedup_window_ms
        # The serving tier reads simulated time from the scheduler, so
        # cached query responses expire on the simulation's clock.
        service.query_frontend.clock = lambda: self.scheduler.now_ms
        service.on_withdrawal = self._withdrawal_notifier(as_info.as_id)
        self.services[as_info.as_id] = service
        self.transport.register(service)
        return service

    @staticmethod
    def _install_rac(service: IrecControlService, spec: AlgorithmSpec) -> None:
        """Install one RAC described by ``spec`` (deployment and hot-swap)."""
        if spec.on_demand:
            service.add_on_demand_rac(
                rac_id=spec.rac_id,
                max_paths_per_interface=spec.max_paths_per_interface,
                registration_limit=spec.registration_limit,
            )
        else:
            assert spec.factory is not None  # validated by AlgorithmSpec
            service.add_static_rac(
                rac_id=spec.rac_id,
                algorithm=spec.factory(),
                max_paths_per_interface=spec.max_paths_per_interface,
                registration_limit=spec.registration_limit,
                use_interface_groups=spec.use_interface_groups,
                use_targets=spec.use_targets,
            )

    def _schedule_timeline(self) -> None:
        """Schedule every timeline event on the discrete-event scheduler.

        Events beyond the simulated horizon (``periods`` × interval, as
        modified by period changes) do not fire during the run; ones
        landing in the final in-flight flush window are deferred to the
        next ``run()`` (if any).  Events sharing a timestamp with PCB
        deliveries apply first: they were scheduled earlier, and the
        scheduler breaks ties FIFO.

        The timeline is validated first: impossible schedules (a recovery
        of a link that was never failed, a rejoin of an AS that never
        left) raise :class:`~repro.exceptions.ConfigurationError` here
        instead of silently no-opping mid-run.
        """
        self.scenario.timeline.validate(self.topology)
        grown_ases = {
            timed.event.new_as
            for timed in self.scenario.timeline
            if isinstance(timed.event, TopologyGrowth)
        }
        for timed in self.scenario.timeline:
            link_kinds = (LinkFailure, LinkRecovery, LinkFlap, GrayFailure, GrayRecovery)
            if isinstance(timed.event, link_kinds) and timed.event.link_id not in self.topology.links:
                raise SimulationError(
                    f"timeline event {timed.trace_label()!r} references an unknown link"
                )
            if isinstance(timed.event, (ASLeave, ASJoin)) and timed.event.as_id not in self.topology:
                raise SimulationError(
                    f"timeline event {timed.trace_label()!r} references an unknown AS"
                )
            if isinstance(timed.event, (PolicySwap, RACSwap)) and timed.event.as_ids is not None:
                for as_id in timed.event.as_ids:
                    if as_id not in self.services:
                        raise SimulationError(
                            f"timeline event {timed.trace_label()!r} targets unknown AS {as_id}"
                        )
            if isinstance(timed.event, RevocationForgery):
                if timed.event.link_id not in self.topology.links:
                    raise SimulationError(
                        f"timeline event {timed.trace_label()!r} references an unknown link"
                    )
                byzantine_targets = (timed.event.attacker_as, timed.event.claimed_origin)
            elif isinstance(timed.event, RevocationReplay):
                byzantine_targets = (timed.event.attacker_as,)
            elif isinstance(timed.event, ForwardingSuppression):
                byzantine_targets = timed.event.as_ids
            else:
                byzantine_targets = ()
            for as_id in byzantine_targets:
                # Grown ASes are legitimate targets once their growth
                # event has fired; the timeline validator enforces the
                # ordering, so membership alone suffices here.
                if as_id not in self.topology and as_id not in grown_ases:
                    raise SimulationError(
                        f"timeline event {timed.trace_label()!r} targets unknown AS {as_id}"
                    )
            self._scheduled_event_counts[timed.time_ms] = (
                self._scheduled_event_counts.get(timed.time_ms, 0) + 1
            )
            self.scheduler.schedule_at(
                timed.time_ms,
                lambda now_ms, _timed=timed: self._apply_event(_timed, now_ms),
            )

    # ------------------------------------------------------------------
    # orchestrators (pull-based disjointness)
    # ------------------------------------------------------------------
    def add_pull_disjointness(
        self,
        origin_as: int,
        target_as: int,
        desired_paths: int = 20,
        seed_paths: Sequence = (),
    ) -> PullBasedDisjointnessOrchestrator:
        """Attach a PD orchestrator at ``origin_as`` towards ``target_as``."""
        service = self.services.get(origin_as)
        if not isinstance(service, IrecControlService):
            raise ConfigurationError(
                f"AS {origin_as} does not run IREC and cannot originate pull-based beacons"
            )
        orchestrator = PullBasedDisjointnessOrchestrator(
            service=service,
            target_as=target_as,
            desired_paths=desired_paths,
            seed_paths=tuple(seed_paths),
        )
        self.orchestrators.append(orchestrator)
        return orchestrator

    # ------------------------------------------------------------------
    # dynamic events and convergence
    # ------------------------------------------------------------------
    def watch_pair(self, source_as: int, destination_as: int) -> None:
        """Track convergence of the paths registered at ``source_as``
        towards ``destination_as`` across dynamic events."""
        for as_id in (source_as, destination_as):
            if as_id not in self.topology:
                raise UnknownASError(as_id)
        pair = (source_as, destination_as)
        if pair not in self.watched_pairs:
            self.watched_pairs.append(pair)

    def add_event_listener(self, listener) -> None:
        """Register a ``(event, now_ms)`` callback fired after each applied
        timeline event (failures, recoveries, churn, swaps)."""
        self.event_listeners.append(listener)

    def add_period_listener(self, listener) -> None:
        """Register a ``(now_ms,)`` callback fired at every period end."""
        self.period_listeners.append(listener)

    @property
    def periods_run(self) -> int:
        """Return how many beaconing periods have completed so far."""
        return self._periods_run

    def usable_path_count(self, source_as: int, destination_as: int) -> int:
        """Return how many registered paths of the pair are usable right now.

        A registered path is usable when the watched endpoints are online
        and every inter-domain link on its segment is currently available.
        """
        if not (self.link_state.is_as_up(source_as) and self.link_state.is_as_up(destination_as)):
            return 0
        paths = self.services[source_as].path_service.paths_to(destination_as)
        return sum(
            1 for path in paths if self.link_state.path_available(path.segment.links())
        )

    def _watched_counts(self) -> Dict[Tuple[int, int], int]:
        return {
            pair: self.usable_path_count(*pair) for pair in self.watched_pairs
        }

    def _usable_registration_times(
        self, source_as: int, destination_as: int
    ) -> Tuple[float, ...]:
        """Return when each currently *usable* path of the pair appeared.

        The sub-period recovery timestamps.  First-registration times are
        used on purpose: a withdrawn path that returns is a fresh entry
        (its ``registered_at_ms`` post-dates the disruption), while a
        surviving path that is merely re-registered keeps its original
        timestamp — so routine periodic merges can never back-date a
        recovery (``last_registered_at_ms`` is refreshed by exactly those
        merges and would).
        """
        if not (self.link_state.is_as_up(source_as) and self.link_state.is_as_up(destination_as)):
            return ()
        return tuple(
            path.registered_at_ms
            for path in self.services[source_as].path_service.paths_to(destination_as)
            if self.link_state.path_available(path.segment.links())
        )

    def _apply_event(self, timed: TimedEvent, now_ms: float) -> None:
        """Apply one timeline event and feed the convergence collector."""
        if self._horizon_reached:
            # Events landing in the final in-flight flush (just past the
            # last period) are beyond the simulated horizon: no period of
            # this run would observe their effects.  They are deferred, not
            # dropped, so a later run() continuing the simulation still
            # applies them (at the start of its first period).
            self._deferred_events.append(timed)
            self._finish_event(timed, now_ms)
            return
        before = self._watched_counts()
        event = timed.event
        self._dispatch_event(event, now_ms)
        after = self._watched_counts()
        self.convergence.on_event(
            event_label=event.trace_label(),
            now_ms=now_ms,
            pair_paths={pair: (before[pair], after[pair]) for pair in before},
            messages_total=self.collector.control_messages_total(),
        )
        for listener in self.event_listeners:
            listener(event, now_ms)
        self._finish_event(timed, now_ms)

    def _dispatch_event(self, event, now_ms: float) -> None:
        """Apply one timeline event's state changes (no bookkeeping).

        The isinstance chain shared by the single-process wrapper
        (:meth:`_apply_event`, which adds convergence probes, listeners
        and the flush trigger around it) and the sharded worker loop
        (where the coordinator performs that bookkeeping globally and
        each shard only applies the state changes, guarded to the
        services it owns).
        """
        owned = None if self.shard is None else self.shard.owned_ases
        if isinstance(event, LinkFailure):
            self.link_state.fail_link(event.link_id)
            self._queue_revocations(failed_link=event.link_id)
        elif isinstance(event, LinkRecovery):
            self.link_state.restore_link(event.link_id)
            # The element is alive again: every service forgets its
            # negative-cache entry so fresh beacons over it are admitted
            # instead of bounced.
            for service in self._services_in_order():
                service.revocations.clear_revoked_link(event.link_id)
        elif isinstance(event, ASLeave):
            self.link_state.set_as_offline(event.as_id)
            # The departing AS restarts cold; its neighbours detect the
            # loss and originate revocations, so everyone *reachable*
            # withdraws state crossing it as the flood arrives.
            if owned is None or event.as_id in owned:
                self._cold_restart(self.services[event.as_id])
            self._queue_revocations(failed_as=event.as_id)
        elif isinstance(event, ASJoin):
            self.link_state.set_as_online(event.as_id)
            for service in self._services_in_order():
                service.revocations.clear_revoked_as(event.as_id)
        elif isinstance(event, ServiceRateChange):
            targets = (
                sorted(event.as_ids)
                if event.as_ids is not None
                else sorted(self.services)
            )
            for as_id in targets:
                if owned is not None and as_id not in owned:
                    continue
                self.transport.set_inbox_budget(as_id, event.budget_per_tick)
        elif isinstance(event, BeaconFlood):
            if owned is not None and event.attacker_as not in owned:
                pass
            elif self.link_state.is_as_up(event.attacker_as):
                attacker = self.services[event.attacker_as]
                for _ in range(event.bursts):
                    attacker.originate(now_ms=now_ms)
        elif isinstance(event, PolicySwap):
            # Both service flavours expose set_policies (the legacy ingress
            # gateway honours admission policies too).
            for service in self._event_targets(event.as_ids):
                service.set_policies(list(event.policies))
        elif isinstance(event, RACSwap):
            for service in self._event_targets(event.as_ids):
                if not isinstance(service, IrecControlService):
                    if event.as_ids is None:
                        continue  # broadcast swaps skip legacy ASes
                    raise SimulationError(
                        f"RAC swap explicitly targets AS {service.as_id}, "
                        "which runs the legacy control service"
                    )
                if not service.remove_rac(event.target_rac_id):
                    if event.as_ids is None:
                        # Broadcast swaps tolerate ASes that (no longer)
                        # deploy the target RAC — e.g. after an earlier
                        # per-AS swap — just as they tolerate legacy ASes.
                        continue
                    raise SimulationError(
                        f"RAC swap targets {event.target_rac_id!r}, which is not "
                        f"deployed at AS {service.as_id}"
                    )
                self._install_rac(service, event.spec)
                specs = self._deployed_specs.setdefault(service.as_id, {})
                specs.pop(event.target_rac_id, None)
                specs[event.spec.rac_id] = event.spec
        elif isinstance(event, BeaconPeriodChange):
            self._interval_ms = event.interval_ms
        elif isinstance(event, LinkFlap):
            self._start_flap(event, now_ms)
        elif isinstance(event, GrayFailure):
            # Deliberately *no* revocation, no negative caching and no
            # availability change: the fault is silent by definition, so
            # the control plane keeps advertising paths across the link
            # and only end-host-observed quality reveals it.
            self.link_state.set_gray(event.link_id, event.drop_rate)
        elif isinstance(event, GrayRecovery):
            self.link_state.clear_gray(event.link_id)
        elif isinstance(event, RevocationForgery):
            if owned is not None and event.attacker_as not in owned:
                pass
            elif self.link_state.is_as_up(event.attacker_as):
                self._forge_revocations(event, now_ms)
        elif isinstance(event, RevocationReplay):
            if owned is not None and event.attacker_as not in owned:
                pass
            elif self.link_state.is_as_up(event.attacker_as):
                self._replay_revocations(event)
        elif isinstance(event, ForwardingSuppression):
            for as_id in sorted(event.as_ids):
                if owned is not None and as_id not in owned:
                    continue
                self.services[as_id].set_revocation_forwarding(not event.suppress)
        elif isinstance(event, TopologyGrowth):
            self._grow_topology(event)
        else:
            raise SimulationError(f"unsupported scenario event {event!r}")

    def _finish_event(self, timed: TimedEvent, now_ms: float) -> None:
        """Flush queued revocations once the tick's last event has applied.

        The flush must run before any *other* same-time scheduler callback
        (traffic rounds, drains) observes the failures, so it happens
        synchronously here — once the per-time counter built by
        :meth:`_schedule_timeline` says no further timeline event shares
        this timestamp.  During a deferred-event replay the caller
        (:meth:`run_period`) flushes once after the whole batch instead.
        """
        remaining = self._scheduled_event_counts.get(timed.time_ms, 1) - 1
        if remaining > 0:
            self._scheduled_event_counts[timed.time_ms] = remaining
            return
        self._scheduled_event_counts.pop(timed.time_ms, None)
        if self._applying_deferred:
            return
        if self._pending_failed_links or self._pending_failed_ases:
            self._flush_revocations(now_ms)

    def _cold_restart(self, service: AnyControlService) -> None:
        """Wipe a departing AS's volatile control-plane state.

        A churned AS comes back as a freshly booted deployment: empty
        ingress database and path service, a cold verified-prefix cache
        and — for IREC ASes — freshly instantiated RACs of its current
        deployment (algorithm state must not survive the restart).
        """
        service.ingress.database.remove_matching(lambda _stored: True)
        service.path_service.remove_matching(lambda _path: True)
        service.ingress.verified_prefixes.clear()
        if isinstance(service, IrecControlService):
            service.pull_results.clear()
            for spec in self._deployed_specs.get(service.as_id, {}).values():
                service.remove_rac(spec.rac_id)
                self._install_rac(service, spec)

    def _event_targets(self, as_ids: Optional[Tuple[int, ...]]) -> List[AnyControlService]:
        if as_ids is None:
            return self._services_in_order()
        if self.shard is not None:
            # Explicit targets on other shards are theirs to apply; the
            # coordinator validated the full target list up front.
            return [
                self.services[as_id] for as_id in sorted(as_ids) if as_id in self.services
            ]
        for as_id in as_ids:
            if as_id not in self.services:
                raise UnknownASError(as_id)
        return [self.services[as_id] for as_id in sorted(as_ids)]

    def _queue_revocations(
        self, failed_link: Optional[Tuple] = None, failed_as: Optional[int] = None
    ) -> None:
        """Queue a failure for aggregated revocation origination.

        Failures are not revoked one message per element: every failure of
        the current scheduler tick is collected, and one flush — run by
        :meth:`_finish_event` after the tick's last timeline event — has
        each adjacent AS originate a single
        :class:`~repro.core.revocation.RevocationMessage` batching *all*
        the elements it detected.  A revocation storm of N simultaneous
        failures therefore costs each origin one flood, not N.
        """
        if failed_link is not None:
            self._pending_failed_links.append(failed_link)
        if failed_as is not None:
            self._pending_failed_ases.append(failed_as)

    def _flush_revocations(self, now_ms: float) -> None:
        """Originate the queued failures' revocations, one message per origin.

        The endpoints of each failed link (and the neighbours of each
        departed AS) detect those failures locally: each origin withdraws
        its own state immediately and floods one signed message naming
        every element it detected this tick, hop-by-hop through the
        transport.  Every other AS withdraws when (and if) a copy arrives
        — replacing the old instantaneous counter flood with real,
        propagation-limited control-plane traffic.
        """
        failed_links, self._pending_failed_links = self._pending_failed_links, []
        failed_ases, self._pending_failed_ases = self._pending_failed_ases, []
        per_origin: Dict[int, Tuple[List[Tuple], List[int]]] = {}
        for link in failed_links:
            (as_a, _if_a), (as_b, _if_b) = link
            for as_id in sorted({as_a, as_b}):
                per_origin.setdefault(as_id, ([], []))[0].append(link)
        for gone_as in failed_ases:
            for as_id in self.topology.neighbors(gone_as):
                per_origin.setdefault(as_id, ([], []))[1].append(gone_as)
        for as_id in sorted(per_origin):
            if self.shard is not None and as_id not in self.shard.owned_ases:
                # Another shard owns this origin; it queued (and will
                # flush) the same failure from its own replica of the
                # event, so exactly one shard originates per origin.
                continue
            if not self.link_state.is_as_up(as_id):
                continue
            links, ases = per_origin[as_id]
            self.collector.record_revocation_batch(len(links) + len(ases))
            self.services[as_id].originate_revocation(
                now_ms=now_ms,
                failed_links=tuple(links),
                failed_ases=tuple(ases),
            )

    # ------------------------------------------------------------------
    # adversarial & gray-failure events
    # ------------------------------------------------------------------
    def _start_flap(self, event: LinkFlap, now_ms: float) -> None:
        """Install a flap's loss rates and schedule its on/off toggles.

        Each toggle replays the full :class:`LinkFailure` /
        :class:`LinkRecovery` machinery (revocation origination, negative
        cache clearing, convergence records, listeners) via
        :meth:`_apply_event`, so a flapping link is loud exactly like a
        scripted failure.  Toggle times are registered in the per-tick
        event counter first, keeping the aggregated revocation flush
        correct when a toggle shares a tick with other timeline events.
        """
        key = event.link_id
        (as_a, _if_a), (as_b, _if_b) = key
        if event.loss_ab:
            self.link_state.set_link_loss(key, as_b, event.loss_ab)
        if event.loss_ba:
            self.link_state.set_link_loss(key, as_a, event.loss_ba)
        if event.loss_ab or event.loss_ba:
            if event.duration_ms is not None:
                clear_at = now_ms + event.duration_ms
            else:
                clear_at = now_ms + event.schedule[-1]
            self.scheduler.schedule_at(
                clear_at,
                lambda _t, _key=key: self.link_state.clear_link_loss(_key),
            )
        if self.shard is not None:
            # Toggles replay the LinkFailure/LinkRecovery machinery, which
            # in a sharded run must be a coordinator-driven barrier (probe,
            # broadcast, flush) — the coordinator synthesizes and
            # dispatches them; the shard only installs the loss rates.
            return
        for index, offset in enumerate(event.schedule):
            toggle = (
                LinkFailure(link_id=key) if index % 2 == 0 else LinkRecovery(link_id=key)
            )
            timed_toggle = TimedEvent(time_ms=now_ms + offset, event=toggle)
            self._scheduled_event_counts[timed_toggle.time_ms] = (
                self._scheduled_event_counts.get(timed_toggle.time_ms, 0) + 1
            )
            self.scheduler.schedule_at(
                timed_toggle.time_ms,
                lambda t, _timed=timed_toggle: self._apply_event(_timed, t),
            )

    def _forge_revocations(self, event: RevocationForgery, now_ms: float) -> None:
        """Inject revocations that claim another AS's identity.

        The attacker signs with its *own* key while naming
        ``claimed_origin`` as the message origin, so receivers that verify
        signatures reject every copy (``rejected_invalid``) without
        marking it seen and without withdrawing anything; with
        verification disabled the forgery succeeds — the scenario knob for
        quantifying what signature checking buys.
        """
        attacker = self.services[event.attacker_as]
        send = self.transport.send_message
        interface_ids = attacker.view.interface_ids()
        for index in range(event.count):
            forged = RevocationMessage(
                origin_as=event.claimed_origin,
                sequence=event.sequence_base + index,
                created_at_ms=now_ms,
                failed_link=event.link_id,
            ).signed(attacker.builder.signer)
            for interface_id in interface_ids:
                send(event.attacker_as, interface_id, forged)

    def _replay_revocations(self, event: RevocationReplay) -> None:
        """Re-flood revocations the attacker has already processed.

        Replayed copies carry their original authentic signatures and
        ``(origin, sequence)`` keys, so honest receivers inside the dedup
        window drop them as ``duplicates`` — no state changes, only
        counter noise.  Cached messages are replayed in sorted key order
        (cycling when ``count`` exceeds the cache), keeping the injected
        traffic deterministic.
        """
        attacker = self.services[event.attacker_as]
        state = attacker.revocations
        cached: Dict[Tuple[int, int], RevocationMessage] = {}
        for message, _cached_at in state.revoked_links.values():
            cached[message.key] = message
        for message, _cached_at in state.revoked_ases.values():
            cached[message.key] = message
        if not cached:
            return
        replayable = [cached[key] for key in sorted(cached)]
        send = self.transport.send_message
        interface_ids = attacker.view.interface_ids()
        for index in range(event.count):
            message = replayable[index % len(replayable)]
            for interface_id in interface_ids:
                send(event.attacker_as, interface_id, message)

    def _grow_topology(self, event: TopologyGrowth) -> None:
        """Grow the topology: a brand-new AS attaches and comes online.

        Adds the AS and its links to the live topology, patches the
        attachment ASes' local views (their next origination round uses
        the new interface), and builds + registers a control service so
        the newcomer participates from the next beaconing period on.
        """
        latitude, longitude = event.location
        location = GeoCoordinate(latitude=latitude, longitude=longitude)
        new_info = ASInfo(as_id=event.new_as, name=f"grown-{event.new_as}")
        for index in range(1, len(event.attach_to) + 1):
            new_info.add_interface(
                Interface(as_id=event.new_as, interface_id=index, location=location)
            )
        self.topology.add_as(new_info)
        for index, neighbor_as in enumerate(event.attach_to, start=1):
            neighbor_info = self.topology.as_info(neighbor_as)
            neighbor_if = max(neighbor_info.interfaces, default=0) + 1
            existing = neighbor_info.interface_ids()
            neighbor_location = (
                neighbor_info.interface(existing[0]).location if existing else location
            )
            neighbor_info.add_interface(
                Interface(
                    as_id=neighbor_as,
                    interface_id=neighbor_if,
                    location=neighbor_location,
                )
            )
            link = Link(
                interface_a=(event.new_as, index),
                interface_b=(neighbor_as, neighbor_if),
                latency_ms=event.latency_ms,
                bandwidth_mbps=event.bandwidth_mbps,
                relationship=event.relationship,
            )
            self.topology.add_link(link)
            neighbor_service = self.services.get(neighbor_as)
            if neighbor_service is not None:
                neighbor_service.view.attach_link(neighbor_if, link)
        if self.shard is None or event.new_as in self.shard.owned_ases:
            # In a sharded run the coordinator designates exactly one
            # owning shard for the newcomer (adding it to that shard's
            # owned set before dispatch); every other shard only extends
            # its topology replica and exports traffic towards it.
            self._build_service(new_info)

    def add_revocation_listener(self, listener) -> None:
        """Register an ``(as_id, message, removed, now_ms)`` callback fired
        whenever a revocation message withdraws state at an AS."""
        self.revocation_listeners.append(listener)

    def _withdrawal_notifier(self, as_id: int):
        """Return the per-service withdrawal callback fanning out to listeners."""

        def notify(message, removed, now_ms: float, _as_id=as_id) -> None:
            for listener in self.revocation_listeners:
                listener(_as_id, message, removed, now_ms)

        return notify

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_period(self) -> List[RoundReport]:
        """Run one complete beaconing period.

        The period consists of: origination at every AS, delivery of all
        in-flight PCBs (their latencies are tiny compared to the period),
        one RAC round at every AS, another delivery phase so that freshly
        propagated PCBs reach their neighbours before the period ends, and
        finally an advancement step for every pull orchestrator.

        Timeline events fire inside the delivery phases (the scheduler
        processes them in time order with in-flight PCBs), offline ASes
        neither originate nor run rounds, and at the period boundary every
        watched pair is probed for convergence.  A period change applies
        from the next period onwards.
        """
        period_start_ms = self._next_period_start_ms
        mid_period_ms = period_start_ms + self._interval_ms / 2.0
        period_end_ms = period_start_ms + self._interval_ms

        self.scheduler.run_until(period_start_ms)
        if self._deferred_events:
            # Events deferred by a previous run()'s flush apply now, at the
            # first instant a period can observe them.
            deferred, self._deferred_events = self._deferred_events, []
            self._applying_deferred = True
            try:
                for timed in deferred:
                    self._apply_event(timed, self.scheduler.now_ms)
            finally:
                self._applying_deferred = False
            if self._pending_failed_links or self._pending_failed_ases:
                self._flush_revocations(self.scheduler.now_ms)
        with _spans.span("sim.originate"):
            for service in self._services_in_order():
                if self.link_state.is_as_up(service.as_id):
                    service.originate(now_ms=self.scheduler.now_ms)
        self.scheduler.run_until(mid_period_ms)

        reports: List[RoundReport] = []
        with _spans.span("sim.rac_round"):
            for service in self._services_in_order():
                if not self.link_state.is_as_up(service.as_id):
                    continue
                report = service.run_round(now_ms=self.scheduler.now_ms)
                if isinstance(report, RoundReport):
                    reports.append(report)
        self.scheduler.run_until(period_end_ms)

        for orchestrator in self.orchestrators:
            if not self.link_state.is_as_up(orchestrator.service.as_id):
                continue
            if orchestrator.state is PullState.IDLE:
                orchestrator.start(now_ms=self.scheduler.now_ms)
            else:
                orchestrator.advance(now_ms=self.scheduler.now_ms)

        if self.watched_pairs:
            self.convergence.on_period_end(
                now_ms=self.scheduler.now_ms,
                pair_paths=self._watched_counts(),
                messages_total=self.collector.control_messages_total(),
                pair_registered_at={
                    pair: self._usable_registration_times(*pair)
                    for pair in self.watched_pairs
                },
            )

        snapshot = (
            self.collector.inbox_dropped_total(),
            self.collector.inbox_marked_total(),
            self.collector.inbox_deferred_total(),
        )
        if snapshot != self._overload_snapshot:
            previous = self._overload_snapshot
            self._overload_snapshot = snapshot
            # Only overloaded periods emit a trace line, so unlimited runs
            # (the PR-5 default) keep a bit-identical golden trace.
            self.convergence.on_overload(
                self.scheduler.now_ms,
                dropped=snapshot[0] - previous[0],
                marked=snapshot[1] - previous[1],
                deferred=snapshot[2] - previous[2],
            )

        self.round_reports.extend(reports)
        self._periods_run += 1
        self._next_period_start_ms = period_end_ms
        for listener in self.period_listeners:
            listener(self.scheduler.now_ms)
        return reports

    def run(self, periods: Optional[int] = None) -> SimulationResult:
        """Run ``periods`` beaconing periods (default: the scenario's count)."""
        total = periods if periods is not None else self.scenario.periods
        for _ in range(total):
            self.run_period()
        # Flush any remaining in-flight deliveries; timeline events in the
        # flush window are beyond the horizon and suppressed.
        self._horizon_reached = True
        self.scheduler.run_until(self._next_period_start_ms + 1.0)
        self._horizon_reached = False
        return SimulationResult(
            topology=self.topology,
            services=dict(self.services),
            collector=self.collector,
            round_reports=list(self.round_reports),
            periods_run=self._periods_run,
            final_time_ms=self.scheduler.now_ms,
            convergence=self.convergence,
            link_state=self.link_state,
        )

    def _services_in_order(self) -> List[AnyControlService]:
        return [self.services[as_id] for as_id in sorted(self.services)]
