"""The periodic beaconing driver.

This module glues the topology, the control services and the simulated
transport into the experiment the paper runs: every AS originates PCBs and
runs its RACs once per propagation interval (ten simulated minutes), PCBs
travel with link propagation delays, and after a configurable number of
periods the registered paths and transmission counts are available for the
Figure-8 analyses.

The driver also hosts pull-based disjointness orchestrators, advancing them
after every period so that the PD experiment can run inside the same
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.control_service import ControlServiceConfig, IrecControlService, RoundReport
from repro.core.local_view import LocalTopologyView
from repro.core.pull import PullBasedDisjointnessOrchestrator, PullState
from repro.crypto.keys import KeyStore
from repro.exceptions import ConfigurationError, UnknownASError
from repro.scion.legacy import LegacyControlService
from repro.simulation.collector import MetricsCollector
from repro.simulation.engine import EventScheduler
from repro.simulation.network import SimulatedTransport
from repro.simulation.scenario import ScenarioConfig
from repro.topology.graph import Topology
from repro.topology.intra_domain import IntraDomainRegistry

#: A control service of either flavour.
AnyControlService = Union[IrecControlService, LegacyControlService]


@dataclass
class SimulationResult:
    """Everything a finished simulation exposes to the analysis code."""

    topology: Topology
    services: Dict[int, AnyControlService]
    collector: MetricsCollector
    round_reports: List[RoundReport] = field(default_factory=list)
    periods_run: int = 0
    final_time_ms: float = 0.0

    def service(self, as_id: int) -> AnyControlService:
        """Return the control service of ``as_id``."""
        try:
            return self.services[as_id]
        except KeyError:
            raise UnknownASError(as_id) from None

    def registered_paths(self, at_as: int, origin_as: int):
        """Return the paths registered at ``at_as`` towards ``origin_as``."""
        return self.service(at_as).path_service.paths_to(origin_as)


class BeaconingSimulation:
    """Drives periodic beaconing over a topology according to a scenario."""

    def __init__(
        self,
        topology: Topology,
        scenario: ScenarioConfig,
        key_store: Optional[KeyStore] = None,
        intra_domain: Optional[IntraDomainRegistry] = None,
    ) -> None:
        self.topology = topology
        self.scenario = scenario
        self.key_store = key_store or KeyStore()
        self.intra_domain = intra_domain or IntraDomainRegistry()
        self.scheduler = EventScheduler()
        self.collector = MetricsCollector(period_ms=scenario.propagation_interval_ms)
        self.transport = SimulatedTransport(
            topology=topology,
            scheduler=self.scheduler,
            collector=self.collector,
            processing_delay_ms=scenario.processing_delay_ms,
        )
        self.services: Dict[int, AnyControlService] = {}
        self.orchestrators: List[PullBasedDisjointnessOrchestrator] = []
        self.round_reports: List[RoundReport] = []
        self._periods_run = 0
        self._build_services()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_services(self) -> None:
        legacy_set = set(self.scenario.legacy_ases)
        for as_info in self.topology:
            view = LocalTopologyView.from_topology(
                self.topology,
                as_info.as_id,
                intra_domain=self.intra_domain.model_for(as_info),
            )
            if as_info.as_id in legacy_set:
                service: AnyControlService = LegacyControlService(
                    view=view,
                    key_store=self.key_store,
                    transport=self.transport,
                    verify_signatures=self.scenario.verify_signatures,
                )
            else:
                service = IrecControlService(
                    view=view,
                    key_store=self.key_store,
                    transport=self.transport,
                    grouping_policy=self.scenario.grouping_policy,
                    config=ControlServiceConfig(
                        verify_signatures=self.scenario.verify_signatures,
                    ),
                )
                for spec in self.scenario.algorithms:
                    if spec.on_demand:
                        service.add_on_demand_rac(
                            rac_id=spec.rac_id,
                            max_paths_per_interface=spec.max_paths_per_interface,
                            registration_limit=spec.registration_limit,
                        )
                    else:
                        assert spec.factory is not None  # validated by AlgorithmSpec
                        service.add_static_rac(
                            rac_id=spec.rac_id,
                            algorithm=spec.factory(),
                            max_paths_per_interface=spec.max_paths_per_interface,
                            registration_limit=spec.registration_limit,
                            use_interface_groups=spec.use_interface_groups,
                            use_targets=spec.use_targets,
                        )
            self.services[as_info.as_id] = service
            self.transport.register(service)

    # ------------------------------------------------------------------
    # orchestrators (pull-based disjointness)
    # ------------------------------------------------------------------
    def add_pull_disjointness(
        self,
        origin_as: int,
        target_as: int,
        desired_paths: int = 20,
        seed_paths: Sequence = (),
    ) -> PullBasedDisjointnessOrchestrator:
        """Attach a PD orchestrator at ``origin_as`` towards ``target_as``."""
        service = self.services.get(origin_as)
        if not isinstance(service, IrecControlService):
            raise ConfigurationError(
                f"AS {origin_as} does not run IREC and cannot originate pull-based beacons"
            )
        orchestrator = PullBasedDisjointnessOrchestrator(
            service=service,
            target_as=target_as,
            desired_paths=desired_paths,
            seed_paths=tuple(seed_paths),
        )
        self.orchestrators.append(orchestrator)
        return orchestrator

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_period(self) -> List[RoundReport]:
        """Run one complete beaconing period.

        The period consists of: origination at every AS, delivery of all
        in-flight PCBs (their latencies are tiny compared to the period),
        one RAC round at every AS, another delivery phase so that freshly
        propagated PCBs reach their neighbours before the period ends, and
        finally an advancement step for every pull orchestrator.
        """
        period_start_ms = self._periods_run * self.scenario.propagation_interval_ms
        mid_period_ms = period_start_ms + self.scenario.propagation_interval_ms / 2.0
        period_end_ms = period_start_ms + self.scenario.propagation_interval_ms

        self.scheduler.run_until(period_start_ms)
        for service in self._services_in_order():
            service.originate(now_ms=self.scheduler.now_ms)
        self.scheduler.run_until(mid_period_ms)

        reports: List[RoundReport] = []
        for service in self._services_in_order():
            report = service.run_round(now_ms=self.scheduler.now_ms)
            if isinstance(report, RoundReport):
                reports.append(report)
        self.scheduler.run_until(period_end_ms)

        for orchestrator in self.orchestrators:
            if orchestrator.state is PullState.IDLE:
                orchestrator.start(now_ms=self.scheduler.now_ms)
            else:
                orchestrator.advance(now_ms=self.scheduler.now_ms)

        self.round_reports.extend(reports)
        self._periods_run += 1
        return reports

    def run(self, periods: Optional[int] = None) -> SimulationResult:
        """Run ``periods`` beaconing periods (default: the scenario's count)."""
        total = periods if periods is not None else self.scenario.periods
        for _ in range(total):
            self.run_period()
        # Flush any remaining in-flight deliveries.
        self.scheduler.run_until(self._periods_run * self.scenario.propagation_interval_ms + 1.0)
        return SimulationResult(
            topology=self.topology,
            services=dict(self.services),
            collector=self.collector,
            round_reports=list(self.round_reports),
            periods_run=self._periods_run,
            final_time_ms=self.scheduler.now_ms,
        )

    def _services_in_order(self) -> List[AnyControlService]:
        return [self.services[as_id] for as_id in sorted(self.services)]
