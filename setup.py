"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file only exists
so that editable installs work in offline environments whose setuptools
lacks PEP 517 editable-wheel support (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
