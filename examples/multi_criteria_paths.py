#!/usr/bin/env python3
"""The paper's Figure-1 scenario: three applications, three optimal paths.

A source AS hosts three applications with different communication-quality
criteria:

* a VoIP client that wants the lowest latency,
* a file-transfer application that wants the highest bandwidth, and
* a live-video application that wants the highest bandwidth among paths
  with latency at most 30 ms.

BGP-style single-path routing can only serve the first one.  This example
builds the Figure-1 topology, deploys three parallel RACs (shortest path,
widest path, latency-bounded widest path) and shows that each application
obtains its own optimal path from the same control plane — and that the
paths actually forward packets with the predicted latency.

Run it with::

    python examples/multi_criteria_paths.py
"""

from __future__ import annotations

from repro.algorithms.bandwidth import LatencyBoundedWidestAlgorithm, WidestPathAlgorithm
from repro.analysis.reporting import format_table
from repro.core.criteria import lowest_latency, shortest_widest, widest_with_latency_bound
from repro.dataplane.endhost import EndHost, PathSelectionPreference
from repro.dataplane.network import DataPlaneNetwork
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import AlgorithmSpec, ScenarioConfig, one_shortest_path_spec
from repro.topology.entities import ASInfo, Interface, Link, Relationship
from repro.topology.geo import GeoCoordinate
from repro.topology.graph import Topology

SOURCE_AS = 1
DESTINATION_AS = 3


def build_figure1_topology() -> Topology:
    """Six ASes giving the source three distinct paths to the destination.

    * 1-2-3: 20 ms, 100 Mbit/s   (lowest latency),
    * 1-4-5-6-3: 40 ms, 10 Gbit/s (highest bandwidth),
    * 1-4-5-3: 30 ms, 1 Gbit/s    (highest bandwidth within 30 ms).
    """
    coordinates = {
        1: (47.0, 8.0),
        2: (48.0, 9.0),
        3: (49.0, 10.0),
        4: (46.0, 8.0),
        5: (45.0, 9.0),
        6: (44.0, 10.0),
    }
    interface_counts = {1: 2, 2: 2, 3: 3, 4: 2, 5: 3, 6: 2}
    topology = Topology()
    for as_id, count in interface_counts.items():
        info = ASInfo(as_id=as_id, name=f"as-{as_id}")
        lat, lon = coordinates[as_id]
        for interface_id in range(1, count + 1):
            info.add_interface(
                Interface(
                    as_id=as_id,
                    interface_id=interface_id,
                    location=GeoCoordinate(lat, lon + interface_id * 0.01),
                )
            )
        topology.add_as(info)

    def link(a, b, latency, bandwidth):
        topology.add_link(
            Link(
                interface_a=a,
                interface_b=b,
                latency_ms=latency,
                bandwidth_mbps=bandwidth,
                relationship=Relationship.PEER,
            )
        )

    link((1, 1), (2, 1), 10.0, 100.0)
    link((2, 2), (3, 1), 10.0, 100.0)
    link((1, 2), (4, 1), 10.0, 10_000.0)
    link((4, 2), (5, 1), 10.0, 10_000.0)
    link((5, 2), (6, 1), 10.0, 10_000.0)
    link((6, 2), (3, 2), 10.0, 10_000.0)
    link((5, 3), (3, 3), 10.0, 1_000.0)
    return topology


def main() -> None:
    topology = build_figure1_topology()
    scenario = ScenarioConfig(
        algorithms=(
            one_shortest_path_spec(),
            AlgorithmSpec(
                rac_id="widest",
                factory=lambda: WidestPathAlgorithm(paths_per_interface=2),
                use_interface_groups=False,
            ),
            AlgorithmSpec(
                rac_id="live-video",
                factory=lambda: LatencyBoundedWidestAlgorithm(
                    latency_bound_ms=30.5, paths_per_interface=2
                ),
                use_interface_groups=False,
            ),
        ),
        periods=5,
        verify_signatures=True,
    )
    result = BeaconingSimulation(topology, scenario).run()

    host = EndHost(
        host_id="apps",
        as_id=SOURCE_AS,
        path_service=result.service(SOURCE_AS).path_service,
    )
    applications = [
        ("VoIP (lowest latency)", PathSelectionPreference(lowest_latency())),
        ("File transfer (shortest-widest)", PathSelectionPreference(shortest_widest())),
        (
            "Live video (widest with latency <= 30.5 ms)",
            PathSelectionPreference(widest_with_latency_bound(30.5)),
        ),
    ]

    network = DataPlaneNetwork(topology=topology)
    rows = []
    for label, preference in applications:
        selected = host.select_paths(DESTINATION_AS, preference, limit=1)
        if not selected:
            rows.append([label, "-", "-", "-", "-"])
            continue
        segment = selected[0].segment
        packet = host.build_packet(DESTINATION_AS, preference)
        report = network.deliver(packet)
        rows.append(
            [
                label,
                " -> ".join(str(a) for a in segment.as_path()),
                f"{segment.total_latency_ms():.1f}",
                f"{segment.bottleneck_bandwidth_mbps():.0f}",
                f"{report.latency_ms:.1f}" if report.delivered else "FAILED",
            ]
        )

    print("Figure-1 scenario: per-application optimal paths from AS 1 to AS 3\n")
    print(
        format_table(
            ["application", "AS path", "predicted latency (ms)", "bandwidth (Mbit/s)", "measured latency (ms)"],
            rows,
        )
    )
    print(
        "\nEach application receives a different path from the same control plane,"
        "\nwhich single-criterion routing cannot provide."
    )


if __name__ == "__main__":
    main()
