#!/usr/bin/env python3
"""Flow-level traffic riding discovered paths through a timed link failure.

The dynamic-failover example measures how the *control plane* re-converges
after a failure; this one measures what that convergence is worth to
*traffic*.  A gravity-model workload with a hotspot (hundreds of thousands
of aggregated end-host flows, a third of the demand aimed at one stub AS)
runs over the paths a beaconing simulation registers, through
capacity-limited links with weighted max-min fair sharing.  A
scripted timeline then cuts a stub AS off mid-round — both of its
provider links fail:

1. flow groups riding the links are broken the instant the events fire,
2. the next traffic round re-selects from the (already withdrawn) path
   service — but every path to the stub is gone, so its groups stay
   black-holed while other traffic keeps flowing,
3. the links recover two periods later; the black hole persists until the
   *control plane* re-registers paths in the following beaconing period —
   the goodput recovery is gated by control-plane convergence, not by the
   physical repair, and
4. the goodput curve shows the dip and the recovery, with per-group
   time-to-reroute records quantifying the outage.

The whole run is seeded and deterministic: the traffic collector's trace
digest is pinned by ``tests/test_traffic_engine.py``.

Run it with::

    python examples/traffic_failover.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table, format_timeseries
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import don_scenario
from repro.topology.generator import TopologyConfig, generate_topology
from repro.traffic import CapacityLinkModel, EcmpPolicy, TrafficEngine, hotspot_matrix
from repro.units import minutes

PERIOD_MS = minutes(10)
ROUND_MS = minutes(1)


def build():
    """Build the pinned deterministic scenario; return (simulation, engine)."""
    topology = generate_topology(
        TopologyConfig(num_ases=24, num_core=4, num_transit=8, seed=13)
    )
    as_ids = topology.as_ids()
    victim_as = as_ids[-1]

    # Gravity-model demand plus a hotspot: 250k end-host flows aggregated
    # into flow groups, a third of the demand destined to the victim stub
    # (the flash crowd the failure will cut off).
    matrix = hotspot_matrix(
        topology,
        total_demand_mbps=40_000.0,
        total_flows=250_000,
        hotspot_as=victim_as,
        hotspot_fraction=0.35,
        max_pairs=150,
        seed=3,
    )

    # Cut the victim stub off mid-round at 2.54 periods (every provider
    # link fails), repair the links two periods later; paths only return
    # once the next beaconing period re-registers them.
    victim_links = [link.key for link in topology.links_of(victim_as)]
    scenario = don_scenario(periods=7, verify_signatures=False)
    for link_id in victim_links:
        scenario.at(2.54 * PERIOD_MS).fail_link(link_id)
        scenario.at(4.54 * PERIOD_MS).recover_link(link_id)

    simulation = BeaconingSimulation(topology, scenario)
    engine = TrafficEngine.for_simulation(
        simulation,
        matrix,
        policy=EcmpPolicy(max_paths=2),
        round_interval_ms=ROUND_MS,
        link_model=CapacityLinkModel(topology),
    )
    # Traffic starts after the first beaconing period has registered paths.
    engine.schedule_rounds(start_ms=1.0 * PERIOD_MS + ROUND_MS, count=58)
    return simulation, engine


def main() -> None:
    simulation, engine = build()
    matrix = engine.matrix
    print(
        f"Workload: {matrix.total_flows} flows in {len(matrix)} flow groups "
        f"(gravity + hotspot), "
        f"{matrix.total_demand_mbps:.0f} Mbit/s offered over "
        f"{simulation.topology.num_ases} ASes."
    )
    for timed in simulation.scenario.timeline:
        print(f"  t={timed.time_ms / PERIOD_MS:5.2f} periods  {timed.event.trace_label()}")

    result = simulation.run()
    collector = engine.collector

    print(
        f"\nRan {engine.rounds_run} traffic rounds inside {result.periods_run} "
        f"beaconing periods: {collector.total_flow_rounds} flow-rounds simulated."
    )

    failure_ms = min(t.time_ms for t in simulation.scenario.timeline)
    repair_ms = max(t.time_ms for t in simulation.scenario.timeline)
    print("\nGoodput (carried Mbit/s per round, minutes of simulated time):")
    series = collector.goodput_series()
    window = [
        (time, value)
        for time, value in series
        if failure_ms - 3 * ROUND_MS <= time <= failure_ms + 5 * ROUND_MS
        or repair_ms + 9 * ROUND_MS <= time <= repair_ms + 23 * ROUND_MS
    ]
    print(format_timeseries(window, value_label="carried Mbit/s",
                            time_divisor=minutes(1), time_label="t (min)"))

    if collector.reroutes:
        rows = [
            [
                record.group_id,
                record.flows,
                record.cause,
                f"{record.broken_at_ms / minutes(1):.2f}",
                f"{record.time_to_reroute_ms / 1000.0:.1f} s"
                if record.rerouted
                else "black-holed",
            ]
            for record in collector.reroutes[:10]
        ]
        print(
            f"\nFlow groups broken by the failure "
            f"({len(collector.reroutes)} total, first {len(rows)}):"
        )
        print(format_table(["group", "flows", "cause", "broken at (min)", "time to reroute"], rows))
        mean_ttr = collector.mean_time_to_reroute_ms()
        if mean_ttr is not None:
            print(f"\nMean time-to-reroute: {mean_ttr / 1000.0:.1f} s")
    recovery = collector.goodput_recovery_ms(failure_ms)
    if recovery is not None:
        print(f"Goodput recovered {recovery / minutes(1):.1f} min after the failure.")
    else:
        print("Goodput did not dip below tolerance (failover absorbed the failure).")
    print(f"\nTraffic trace digest: {collector.trace_digest()}")


if __name__ == "__main__":
    main()
