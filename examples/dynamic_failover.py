#!/usr/bin/env python3
"""Dynamic scenarios: timed failures, churn and convergence metrics.

The static examples stop at "inject a failure, check which paths survive".
This one drives the full dynamic loop the paper's Figure-8b argument is
about: events fire *while beaconing runs*, in-flight PCBs on a failed link
are lost, every AS withdraws the poisoned state, and the next beaconing
periods re-converge.

The scripted timeline:

1. a core link fails mid-period (PCBs on it are dropped, paths over it are
   withdrawn network-wide),
2. the link recovers two periods later (paths re-propagate), and
3. one stub AS churns — leaves and rejoins — under a seeded RNG.

A :class:`ConvergenceCollector` watches a stub-to-core AS pair and reports
paths lost, time-to-recovery and the control-message overhead spent
re-converging.  The run is fully deterministic: re-running prints the same
report.

Run it with::

    python examples/dynamic_failover.py
"""

from __future__ import annotations

import random

from repro.analysis.reporting import format_table
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.events import random_churn
from repro.simulation.scenario import don_scenario
from repro.topology.generator import TopologyConfig, generate_topology
from repro.units import minutes

PERIOD_MS = minutes(10)


def main() -> None:
    topology = generate_topology(
        TopologyConfig(num_ases=24, num_core=4, num_transit=8, seed=13)
    )
    as_ids = topology.as_ids()
    source_as, origin_as = as_ids[-1], as_ids[0]

    # The victim: one of the parallel links inside the fully meshed core.
    core_link = topology.links_between(as_ids[0], as_ids[1])[0].key

    scenario = don_scenario(periods=8, verify_signatures=False)
    # 1. + 2. — fail the core link mid-period 3, recover it two periods later.
    scenario.at(3.5 * PERIOD_MS).fail_link(core_link)
    scenario.at(5.5 * PERIOD_MS).recover_link(core_link)
    # 3. — churn one stub AS (leave, rejoin one period later), seeded.
    stub_candidates = [a for a in as_ids if a not in (source_as, origin_as)][-8:]
    scenario.timeline.extend(
        random_churn(
            topology,
            count=1,
            rng=random.Random(2025),
            start_ms=4.5 * PERIOD_MS,
            spacing_ms=PERIOD_MS,
            downtime_ms=PERIOD_MS,
            candidates=stub_candidates,
        )
    )

    print("Scripted timeline:")
    for timed in scenario.timeline:
        print(f"  t={timed.time_ms / PERIOD_MS:4.1f} periods  {timed.event.trace_label()}")

    simulation = BeaconingSimulation(topology, scenario)
    simulation.watch_pair(source_as, origin_as)
    result = simulation.run()

    print(
        f"\nSimulated {result.periods_run} periods over {topology.num_ases} ASes: "
        f"{result.collector.total_sent} PCBs sent, "
        f"{result.collector.total_dropped} lost on failed links, "
        f"{result.collector.total_revocations} revocation messages "
        f"({result.collector.revocations_dropped} lost in flight).\n"
    )

    records = result.convergence.records
    if not records:
        print(f"Watched pair AS {source_as} -> AS {origin_as} was never disrupted.")
    else:
        rows = [
            [
                record.event_label,
                f"{record.event_time_ms / PERIOD_MS:.1f}",
                record.paths_lost,
                record.paths_regained,
                f"{record.time_to_recovery_ms / PERIOD_MS:.1f}"
                if record.recovered
                else "not recovered",
                record.control_message_overhead
                if record.control_message_overhead is not None
                else "-",
            ]
            for record in records
        ]
        print(f"Disruptions of the watched pair AS {source_as} -> AS {origin_as}:")
        print(
            format_table(
                ["event", "at (periods)", "lost", "regained",
                 "time to recovery (periods)", "msg overhead"],
                rows,
            )
        )

    outage = result.convergence.current_outage_ms(source_as, origin_as, result.final_time_ms)
    print(f"\nOutage at the end of the run: {outage:.0f} ms (0 means fully recovered).")


if __name__ == "__main__":
    main()
