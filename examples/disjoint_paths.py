#!/usr/bin/env python3
"""Pull-based disjointness (PD): collecting link-disjoint paths to a target.

Fault-tolerant applications (multipath transports, critical infrastructure
monitoring) want many link-disjoint paths so that link failures cannot cut
them off.  The paper's PD procedure combines three IREC mechanisms:

* the HD static RAC seeds an initial path set,
* **pull-based routing** lets the source request paths *towards* a specific
  target AS, and
* **on-demand routing** ships, at every iteration, a fresh link-avoiding
  algorithm whose avoid set is every link already collected.

This example runs PD between two stub ASes of a generated topology and
reports the tolerable-link-failure (TLF) improvement over the shortest-path
baselines.

Run it with::

    python examples/disjoint_paths.py
"""

from __future__ import annotations

from repro.analysis.disjointness_eval import evaluate_disjointness
from repro.analysis.reporting import format_table
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import disjointness_scenario
from repro.topology.generator import TopologyConfig, generate_topology

DESIRED_DISJOINT_PATHS = 4


def main() -> None:
    topology = generate_topology(
        TopologyConfig(num_ases=24, num_core=4, num_transit=8, seed=5)
    )
    as_ids = topology.as_ids()
    source_as, target_as = as_ids[-1], as_ids[0]

    scenario = disjointness_scenario(periods=3, verify_signatures=False)
    simulation = BeaconingSimulation(topology, scenario)
    orchestrator = simulation.add_pull_disjointness(
        origin_as=source_as, target_as=target_as, desired_paths=DESIRED_DISJOINT_PATHS
    )
    # One PD iteration completes per beaconing period, so allow extra periods.
    result = simulation.run(periods=scenario.periods + DESIRED_DISJOINT_PATHS)

    print(
        f"PD at AS {source_as} towards AS {target_as}: "
        f"{orchestrator.disjoint_path_count()} link-disjoint paths collected "
        f"in {len(orchestrator.iterations)} iterations (state: {orchestrator.state.value})\n"
    )
    rows = [
        [index, " -> ".join(str(a) for a in beacon.as_path()), f"{beacon.total_latency_ms():.1f}"]
        for index, beacon in enumerate(orchestrator.collected)
    ]
    print(format_table(["#", "AS path", "latency (ms)"], rows))

    evaluation = evaluate_disjointness(
        result,
        tags=["1sp", "5sp", "hd", "pd"],
        as_pairs=[(source_as, target_as)],
        extra_paths={(source_as, target_as): {"pd": list(orchestrator.collected)}},
    )
    tlf_rows = [
        [tag.upper(), evaluation.tlf[tag][0]] for tag in ("1sp", "5sp", "hd", "pd")
    ]
    print("\nTolerable link failures between the AS pair, per algorithm:")
    print(format_table(["algorithm", "TLF"], tlf_rows))
    print(
        "\nPD tops the static algorithms because every iteration explicitly avoids "
        "all links already in the collected set."
    )


if __name__ == "__main__":
    main()
