#!/usr/bin/env python3
"""Quickstart: generate a topology, run IREC beaconing, query paths.

This example walks through the minimal IREC workflow:

1. generate a small synthetic inter-domain topology (the library's stand-in
   for the CAIDA geo-rel dataset),
2. deploy IREC in every AS with two parallel routing algorithms — shortest
   path and delay optimization,
3. run a few beaconing periods in the discrete-event simulator, and
4. query one AS's path service the way an end host would, showing that the
   two algorithms discovered different optimal paths for their criteria.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.criteria import lowest_latency
from repro.dataplane.endhost import EndHost, PathSelectionPreference
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import (
    AlgorithmSpec,
    ScenarioConfig,
    delay_optimization_spec,
    one_shortest_path_spec,
)
from repro.topology.generator import TopologyConfig, generate_topology


def main() -> None:
    # 1. A 20-AS synthetic topology: a meshed core, transit ASes and stubs,
    #    with geo-embedded links whose latency follows great-circle distance.
    topology = generate_topology(
        TopologyConfig(num_ases=20, num_core=3, num_transit=6, seed=42)
    )
    print("Topology:", topology.summary())

    # 2. Every AS runs two parallel RACs: 1SP (shortest path) and DON (delay
    #    optimization on received paths).
    scenario = ScenarioConfig(
        algorithms=(
            one_shortest_path_spec(),
            delay_optimization_spec(extended_paths=False),
        ),
        periods=4,
        verify_signatures=True,
    )

    # 3. Run the beaconing simulation.
    simulation = BeaconingSimulation(topology, scenario)
    result = simulation.run()
    print(
        f"Simulated {result.periods_run} beaconing periods; "
        f"{result.collector.total_sent} PCBs were sent in total."
    )

    # 4. Act as an end host in the highest-numbered AS and ask the local
    #    path service for paths towards AS 1 (a core AS).
    source_as = topology.as_ids()[-1]
    destination_as = topology.as_ids()[0]
    host = EndHost(
        host_id="demo-host",
        as_id=source_as,
        path_service=result.service(source_as).path_service,
    )
    paths = host.available_paths(destination_as)
    rows = [
        [
            "/".join(path.criteria_tags),
            " -> ".join(str(a) for a in path.segment.as_path()),
            path.segment.hop_count,
            path.segment.total_latency_ms(),
        ]
        for path in paths
    ]
    print(f"\nPaths registered at AS {source_as} towards AS {destination_as}:")
    print(format_table(["criteria", "AS path", "hops", "latency (ms)"], rows))

    best = host.select_paths(destination_as, PathSelectionPreference(lowest_latency()), limit=1)
    if best:
        print(
            f"\nLowest-latency choice: {best[0].segment.as_path()} "
            f"at {best[0].segment.total_latency_ms():.2f} ms"
        )


if __name__ == "__main__":
    main()
