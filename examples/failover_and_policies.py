#!/usr/bin/env python3
"""Operating IREC: admission policies, disjoint multipath and fast failover.

This example shows the "operations" side of the reproduction, combining
pieces that a network operator would actually deploy:

1. every AS installs **admission policies** at its ingress gateway
   (path-length cap, valley-free enforcement, an avoided AS),
2. the source AS selects a **maximally link-disjoint path set** from the
   registered paths,
3. a link failure is injected, and
4. the **failover forwarder** keeps delivering packets over the surviving
   disjoint path without waiting for the control plane to reconverge —
   exactly the benefit of registering disjoint paths in advance.

Run it with::

    python examples/failover_and_policies.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.policies import standard_policies
from repro.dataplane.multipath import FailoverForwarder, MultipathSelector
from repro.dataplane.network import DataPlaneNetwork
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.failures import LinkFailureInjector
from repro.simulation.scenario import disjointness_scenario
from repro.topology.generator import TopologyConfig, generate_topology


def main() -> None:
    topology = generate_topology(
        TopologyConfig(num_ases=24, num_core=4, num_transit=8, seed=13)
    )
    as_ids = topology.as_ids()
    source_as, destination_as = as_ids[-1], as_ids[0]
    avoided_as = as_ids[len(as_ids) // 2]

    # 1. Build the simulation and install admission policies at every AS.
    scenario = disjointness_scenario(periods=3, verify_signatures=False)
    simulation = BeaconingSimulation(topology, scenario)
    for service in simulation.services.values():
        policy = standard_policies(max_hops=8, avoided_ases=[avoided_as])
        service.ingress.policies.append(policy)
    result = simulation.run()

    rejected = sum(s.ingress.stats.rejected_policy for s in simulation.services.values())
    print(
        f"Admission policies rejected {rejected} PCBs network-wide "
        f"(paths longer than 8 hops or crossing AS {avoided_as}).\n"
    )

    # 2. Select a disjoint path set at the source.
    path_service = result.service(source_as).path_service
    selector = MultipathSelector(path_service=path_service)
    disjoint = selector.disjoint_paths(destination_as, max_paths=3)
    rows = [
        [
            index,
            " -> ".join(str(a) for a in path.segment.as_path()),
            "/".join(path.criteria_tags),
            f"{path.segment.total_latency_ms():.1f}",
        ]
        for index, path in enumerate(disjoint)
    ]
    print(f"Disjoint path set from AS {source_as} to AS {destination_as}:")
    print(format_table(["#", "AS path", "criteria", "latency (ms)"], rows))
    if not disjoint:
        print("no paths registered — increase the number of simulated periods")
        return

    # 3. Inject a failure on the primary path's first inter-domain link.
    injector = LinkFailureInjector(topology=topology)
    network = DataPlaneNetwork(topology=topology)
    forwarder = FailoverForwarder(network=network, paths=disjoint, failure_injector=injector)

    before = forwarder.deliver()
    victim = disjoint[0].segment.links()[0]
    injector.fail_link(victim)
    after = forwarder.deliver()

    print("\nDelivery before and after failing the primary path's first link:")
    print(
        format_table(
            ["phase", "delivered", "path used", "latency (ms)", "usable disjoint paths"],
            [
                [
                    "before failure",
                    before.delivered,
                    before.used_path_index,
                    f"{before.delivery.latency_ms:.1f}" if before.delivery else "-",
                    len(disjoint),
                ],
                [
                    "after failure",
                    after.delivered,
                    after.used_path_index,
                    f"{after.delivery.latency_ms:.1f}" if after.delivery else "-",
                    forwarder.usable_path_count(),
                ],
            ],
        )
    )
    if after.delivered and after.used_path_index != before.used_path_index:
        print(
            "\nThe failover forwarder switched to a link-disjoint backup path without "
            "any control-plane reconvergence."
        )


if __name__ == "__main__":
    main()
