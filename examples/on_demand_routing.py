#!/usr/bin/env python3
"""On-demand + pull-based routing: a source AS ships its own criterion.

The live-video provider of the paper's motivation wants paths optimized for
a criterion nobody standardized: "highest bandwidth among paths within a
latency bound".  With IREC it does not have to wait for a standards body or
router vendors — it:

1. publishes the algorithm (here: a declarative criteria set, and, as a
   second flavour, a restricted-Python scoring expression) in its own
   algorithm repository,
2. originates **pull-based, on-demand** PCBs that name the target AS and
   reference the algorithm by id and hash, and
3. receives back, from the target, the paths that every on-path AS
   optimized by executing exactly that algorithm inside a sandboxed
   on-demand RAC.

Run it with::

    python examples/on_demand_routing.py
"""

from __future__ import annotations

from repro.algorithms.registry import (
    encode_criteria_payload,
    encode_restricted_python_payload,
)
from repro.analysis.reporting import format_table
from repro.core.criteria import widest_with_latency_bound
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import AlgorithmSpec, ScenarioConfig, one_shortest_path_spec
from repro.topology.generator import TopologyConfig, generate_topology

SOURCE_AS = 20          # a stub AS acting as the video provider's domain
TARGET_AS = 1           # a core AS hosting the video origin


def main() -> None:
    topology = generate_topology(
        TopologyConfig(num_ases=20, num_core=3, num_transit=6, seed=11)
    )
    # Every AS deploys the stable shortest-path RAC plus one on-demand RAC.
    scenario = ScenarioConfig(
        algorithms=(
            one_shortest_path_spec(),
            AlgorithmSpec(rac_id="on-demand", on_demand=True),
        ),
        periods=6,
        verify_signatures=True,
    )
    simulation = BeaconingSimulation(topology, scenario)
    source = simulation.services[SOURCE_AS]

    # Flavour 1: a declarative criteria set (widest path within 60 ms).
    declarative = encode_criteria_payload(
        widest_with_latency_bound(60.0), paths_per_interface=2
    )
    source.publish_algorithm("live-video-60ms", declarative)

    # Flavour 2: the same intent written as a restricted-Python payload —
    # the reproduction's analogue of shipping WebAssembly bytecode.
    scripted = encode_restricted_python_payload(
        "(0 - bandwidth_mbps) if latency_ms <= 60 else inf", paths_per_interface=2
    )
    source.publish_algorithm("live-video-scripted", scripted)

    # Originate pull-based + on-demand PCBs towards the target for both.
    source.originate_pull(target_as=TARGET_AS, now_ms=0.0, algorithm_id="live-video-60ms")
    source.originate_pull(target_as=TARGET_AS, now_ms=0.0, algorithm_id="live-video-scripted")

    result = simulation.run()

    rows = []
    for algorithm_id in ("live-video-60ms", "live-video-scripted"):
        returned = source.pull_results_for(algorithm_id)
        for beacon, received_at in returned[:3]:
            rows.append(
                [
                    algorithm_id,
                    " -> ".join(str(a) for a in beacon.as_path()),
                    f"{beacon.total_latency_ms():.1f}",
                    f"{beacon.bottleneck_bandwidth_mbps():.0f}",
                    f"{received_at / 1000.0:.1f}",
                ]
            )

    print(
        f"Pull-based, on-demand paths returned to AS {SOURCE_AS} "
        f"for target AS {TARGET_AS}:\n"
    )
    if rows:
        print(
            format_table(
                ["algorithm", "AS path (source -> target)", "latency (ms)", "bandwidth (Mbit/s)", "returned at (s)"],
                rows,
            )
        )
    else:
        print("no paths returned — increase the number of simulated periods")

    fetches = result.collector.algorithm_fetches()
    print(
        f"\nOn-path ASes fetched the algorithm payloads {fetches} times in total; "
        "thanks to per-(origin, algorithm) caching each AS fetched each payload at most once."
    )


if __name__ == "__main__":
    main()
