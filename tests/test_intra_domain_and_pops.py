"""Tests for intra-domain latency models and PoP derivation."""

import pytest

from repro.exceptions import TopologyError
from repro.topology.entities import ASInfo, Interface
from repro.topology.generator import generate_topology, small_test_config
from repro.topology.geo import GeoCoordinate, propagation_delay_ms
from repro.topology.intra_domain import IntraDomainModel, IntraDomainRegistry
from repro.topology.pops import derive_pops, pop_of_interface, pop_pairs

ZURICH = GeoCoordinate(47.3769, 8.5417)
LONDON = GeoCoordinate(51.5074, -0.1278)
TOKYO = GeoCoordinate(35.6762, 139.6503)


def as_with_interfaces(as_id=1, locations=(ZURICH, LONDON, TOKYO)):
    info = ASInfo(as_id=as_id)
    for index, location in enumerate(locations, start=1):
        info.add_interface(Interface(as_id=as_id, interface_id=index, location=location))
    return info


class TestIntraDomainModel:
    def test_same_interface_zero_latency(self):
        model = IntraDomainModel(as_info=as_with_interfaces())
        assert model.latency_ms(1, 1) == 0.0

    def test_geodesic_estimate(self):
        model = IntraDomainModel(as_info=as_with_interfaces())
        expected = propagation_delay_ms(ZURICH, LONDON)
        assert model.latency_ms(1, 2) == pytest.approx(expected)

    def test_symmetry(self):
        model = IntraDomainModel(as_info=as_with_interfaces())
        assert model.latency_ms(1, 3) == pytest.approx(model.latency_ms(3, 1))

    def test_processing_overhead_added(self):
        model = IntraDomainModel(as_info=as_with_interfaces(), processing_overhead_ms=2.0)
        expected = propagation_delay_ms(ZURICH, LONDON) + 2.0
        assert model.latency_ms(1, 2) == pytest.approx(expected)

    def test_override(self):
        model = IntraDomainModel(as_info=as_with_interfaces())
        model.set_latency(1, 2, 42.0)
        assert model.latency_ms(1, 2) == 42.0
        assert model.latency_ms(2, 1) == 42.0

    def test_negative_override_rejected(self):
        model = IntraDomainModel(as_info=as_with_interfaces())
        with pytest.raises(TopologyError):
            model.set_latency(1, 2, -1.0)

    def test_latency_from_location(self):
        model = IntraDomainModel(as_info=as_with_interfaces())
        value = model.latency_from_location(1, LONDON.latitude, LONDON.longitude)
        assert value == pytest.approx(propagation_delay_ms(ZURICH, LONDON))


class TestIntraDomainRegistry:
    def test_model_created_on_demand(self):
        registry = IntraDomainRegistry(default_processing_overhead_ms=1.0)
        info = as_with_interfaces()
        model = registry.model_for(info)
        assert model.processing_overhead_ms == 1.0
        assert registry.model_for(info) is model
        assert registry.get(info.as_id) is model

    def test_register_replaces(self):
        registry = IntraDomainRegistry()
        info = as_with_interfaces()
        custom = IntraDomainModel(as_info=info, processing_overhead_ms=9.0)
        registry.register(custom)
        assert registry.model_for(info) is custom

    def test_get_missing_returns_none(self):
        assert IntraDomainRegistry().get(123) is None


class TestPops:
    def test_each_far_location_is_its_own_pop(self, small_topology):
        pops = derive_pops(small_topology)
        assert set(pops) == set(small_topology.as_ids())
        for as_id, as_pops in pops.items():
            member_count = sum(len(p.interfaces) for p in as_pops)
            assert member_count == small_topology.degree_of(as_id)

    def test_colocated_interfaces_merge(self):
        topology = generate_topology(small_test_config())
        coarse = derive_pops(topology, colocation_radius_km=50_000.0)
        for as_pops in coarse.values():
            assert len(as_pops) == 1

    def test_pop_of_interface(self, small_topology):
        pops = derive_pops(small_topology)
        some_as = small_topology.as_ids()[0]
        interface = small_topology.interfaces_of(some_as)[0]
        pop = pop_of_interface(pops, interface.key)
        assert interface.key in pop.interfaces

    def test_pop_of_unknown_interface(self, small_topology):
        pops = derive_pops(small_topology)
        with pytest.raises(KeyError):
            pop_of_interface(pops, (10_000, 1))

    def test_pop_pairs_enumeration(self, small_topology):
        pops = derive_pops(small_topology)
        as_ids = small_topology.as_ids()[:2]
        pairs = pop_pairs(pops, [(as_ids[0], as_ids[1])])
        expected = len(pops[as_ids[0]]) * len(pops[as_ids[1]])
        assert len(pairs) == expected
