"""Tests for unit conversion helpers."""

import math

import pytest

from repro import units


class TestTimeConversions:
    def test_seconds_to_milliseconds(self):
        assert units.seconds(1.5) == 1500.0

    def test_minutes_to_milliseconds(self):
        assert units.minutes(10) == 600_000.0

    def test_hours_to_milliseconds(self):
        assert units.hours(2) == 7_200_000.0

    def test_milliseconds_identity(self):
        assert units.milliseconds(42.5) == 42.5

    def test_ms_to_seconds_round_trip(self):
        assert units.ms_to_seconds(units.seconds(3.25)) == pytest.approx(3.25)


class TestBandwidthConversions:
    def test_gbps(self):
        assert units.gbps(1) == 1000.0

    def test_mbps_identity(self):
        assert units.mbps(250.0) == 250.0


class TestFiberDelay:
    def test_zero_distance_has_zero_delay(self):
        assert units.fiber_delay_ms(0.0) == 0.0

    def test_thousand_kilometres_is_about_five_milliseconds(self):
        # 2/3 speed of light: roughly 5 ms per 1000 km.
        assert units.fiber_delay_ms(1000.0) == pytest.approx(5.0, rel=0.01)

    def test_delay_scales_linearly(self):
        assert units.fiber_delay_ms(200.0) == pytest.approx(2 * units.fiber_delay_ms(100.0))

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            units.fiber_delay_ms(-1.0)

    def test_fiber_speed_is_two_thirds_of_light(self):
        assert units.FIBER_SPEED_KM_PER_MS == pytest.approx(
            units.SPEED_OF_LIGHT_KM_PER_MS * 2.0 / 3.0
        )
