"""Sharded parallel simulation: partitioner, coordinator, crypto pool.

The centerpiece is determinism: a sharded run — any worker count, any
partition seed — must reproduce the single-process golden traces
bit-for-bit.  The golden-digest tests here pass a coordinator factory
through the exact scenario constructions of ``tests/test_golden_trace.py``
and compare against the same pinned digests.
"""

import dataclasses
import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import perf_counters, reset_perf_counters
from repro.crypto.keys import KeyStore
from repro.crypto.pool import CryptoPool, PooledSigner, PooledVerifier
from repro.exceptions import ConfigurationError, UnknownASError
from repro.obs.registry import MetricsRegistry
from repro.obs.bridge import bind_parallel
from repro.parallel import (
    ShardedBeaconingSimulation,
    WorkerPool,
    partition_topology,
)
from repro.parallel.partition import degradable_link_groups
from repro.simulation.scenario import don_scenario
from repro.units import minutes

from tests.conftest import line_topology
from tests.test_golden_trace import (
    FAMILY_DIGESTS,
    GOLDEN_DIGEST,
    run_family_scenario,
    run_scenario,
)


# ---------------------------------------------------------------------------
# Partitioner
# ---------------------------------------------------------------------------


class TestPartitioner:
    def test_partition_covers_every_as_exactly_once(self):
        topology = line_topology(7)
        partition = partition_topology(topology, 3)
        assigned = [as_id for shard in partition.shards for as_id in shard]
        assert sorted(assigned) == sorted(info.as_id for info in topology)
        assert partition.owner == {
            as_id: index
            for index, shard in enumerate(partition.shards)
            for as_id in shard
        }

    def test_partition_is_deterministic_per_seed(self):
        topology = line_topology(9)
        assert partition_topology(topology, 3, seed=5) == partition_topology(
            topology, 3, seed=5
        )

    def test_affinity_groups_stay_on_one_shard(self):
        topology = line_topology(8)
        partition = partition_topology(
            topology, 4, affinity_groups=[(2, 3), (3, 4), (6, 7)]
        )
        # (2,3) and (3,4) coalesce transitively into one super-node.
        assert len({partition.owner[2], partition.owner[3], partition.owner[4]}) == 1
        assert partition.owner[6] == partition.owner[7]

    def test_more_shards_than_ases_leaves_empty_shards(self):
        topology = line_topology(3)
        partition = partition_topology(topology, 5)
        assert partition.shard_count == 5
        assert sum(len(shard) for shard in partition.shards) == 3

    def test_rejections(self):
        topology = line_topology(3)
        with pytest.raises(ConfigurationError):
            partition_topology(topology, 0)
        with pytest.raises(ConfigurationError):
            partition_topology(topology, 2, affinity_groups=[(1, 99)])

    def test_lookahead_is_min_cross_latency_plus_processing(self):
        topology = line_topology(5)
        partition = partition_topology(topology, 2)
        cross = partition.cross_links(topology)
        assert cross, "a 2-shard line must cut at least one link"
        expected = min(link.latency_ms for link in cross) + 1.0
        assert partition.lookahead_ms(topology, 1.0) == pytest.approx(expected)

    def test_single_shard_lookahead_is_infinite(self):
        topology = line_topology(4)
        partition = partition_topology(topology, 1)
        assert partition.lookahead_ms(topology, 1.0) == float("inf")

    def test_degradable_link_groups_cover_lossy_links_only(self):
        topology = line_topology(5)
        scenario = don_scenario(periods=2, verify_signatures=False)
        links = topology.link_ids()
        scenario.at(minutes(5)).flap_link(links[0], schedule=(0.0, 1.0))  # lossless
        scenario.at(minutes(6)).flap_link(links[1], schedule=(0.0, 1.0), loss_ab=0.5)
        scenario.at(minutes(7)).gray_fail(links[2], drop_rate=0.9)
        groups = degradable_link_groups(scenario.timeline)
        lossy = {
            tuple(sorted((links[1][0][0], links[1][1][0]))),
            tuple(sorted((links[2][0][0], links[2][1][0]))),
        }
        assert set(groups) == lossy

    @settings(max_examples=30, deadline=None)
    @given(
        num_ases=st.integers(min_value=2, max_value=12),
        shards=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_partition_properties(self, num_ases, shards, seed):
        """Any (topology size, shard count, seed): a valid, stable partition."""
        topology = line_topology(num_ases)
        partition = partition_topology(topology, shards, seed=seed)
        assigned = sorted(a for shard in partition.shards for a in shard)
        assert assigned == sorted(info.as_id for info in topology)
        assert partition == partition_topology(topology, shards, seed=seed)
        # Degree balance: no shard exceeds the heaviest super-node plus a
        # fair share (greedy heaviest-first bound).
        loads = [
            sum(topology.degree_of(a) for a in shard) for shard in partition.shards
        ]
        if shards > 1 and num_ases >= shards:
            heaviest = max(topology.degree_of(info.as_id) for info in topology)
            fair = sum(loads) / shards
            assert max(loads) <= fair + heaviest


# ---------------------------------------------------------------------------
# Coordinator: construction contract
# ---------------------------------------------------------------------------


class TestCoordinatorContract:
    def test_rejects_on_demand_algorithms(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=1, verify_signatures=False)
        scenario.algorithms = tuple(
            dataclasses.replace(spec, on_demand=True) for spec in scenario.algorithms
        )
        with pytest.raises(ConfigurationError, match="on-demand"):
            ShardedBeaconingSimulation(topology, scenario, workers=2)

    def test_rejects_nonpositive_workers(self):
        topology = line_topology(3)
        with pytest.raises(ConfigurationError):
            ShardedBeaconingSimulation(
                topology, don_scenario(periods=1, verify_signatures=False), workers=0
            )

    def test_watch_pair_validates_as_ids(self):
        topology = line_topology(3)
        simulation = ShardedBeaconingSimulation(
            topology, don_scenario(periods=1, verify_signatures=False), workers=2
        )
        try:
            with pytest.raises(UnknownASError):
                simulation.watch_pair(1, 99)
        finally:
            simulation.close()

    def test_counters_and_utilization_shapes(self):
        topology = line_topology(4)
        simulation = ShardedBeaconingSimulation(
            topology, don_scenario(periods=1, verify_signatures=False), workers=2
        )
        result = simulation.run()
        counters = simulation.counters()
        assert counters["workers"] == 2.0
        assert counters["cross_shard_messages"] > 0
        assert counters["cross_shard_bytes"] > 0
        assert counters["barrier_wait_s"] >= 0.0
        assert len(simulation.utilization()) == 2
        assert result.periods_run == 1
        assert result.service_count == 4

    def test_bind_parallel_exports_sync_gauges(self):
        topology = line_topology(4)
        simulation = ShardedBeaconingSimulation(
            topology, don_scenario(periods=1, verify_signatures=False), workers=2
        )
        registry = MetricsRegistry()
        bind_parallel(simulation, registry)
        simulation.run()
        snapshot = registry.snapshot()
        assert snapshot["parallel.workers"] == 2
        assert snapshot["parallel.cross_shard_messages_total"] > 0
        assert set(snapshot["parallel.worker_utilization"]) == {"0", "1"}


# ---------------------------------------------------------------------------
# Coordinator: golden-digest equivalence (the tentpole's success criterion)
# ---------------------------------------------------------------------------


def _sharded_factory(workers, seed):
    def build(topology, scenario):
        return ShardedBeaconingSimulation(
            topology, scenario, workers=workers, partition_seed=seed
        )

    return build


class TestShardedGoldenTraces:
    @pytest.mark.parametrize(
        "workers,seed", [(2, 0), (2, 7), (4, 0)], ids=["w2s0", "w2s7", "w4s0"]
    )
    def test_sharded_run_matches_clean_golden_digest(self, workers, seed):
        """Event ordering and traces are bit-identical to single-process —
        independent of how many workers run it and how ASes are placed."""
        trace = run_scenario(factory=_sharded_factory(workers, seed))
        digest = hashlib.sha256(trace.encode("utf-8")).hexdigest()
        assert digest == GOLDEN_DIGEST, (
            f"sharded run (workers={workers}, seed={seed}) diverged from the "
            f"single-process golden trace; got {digest!r}:\n{trace}"
        )

    @pytest.mark.parametrize("family", sorted(FAMILY_DIGESTS))
    def test_sharded_run_matches_family_digests(self, family):
        """Loss dice, signature rejection, flap toggles and topology growth
        all reproduce the adversarial-family golden traces across shards."""
        trace = run_family_scenario(family, factory=_sharded_factory(2, 0))
        digest = hashlib.sha256(trace.encode("utf-8")).hexdigest()
        assert digest == FAMILY_DIGESTS[family], (
            f"sharded {family} run diverged from the pinned digest; "
            f"got {digest!r}:\n{trace}"
        )


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def test_executor_is_reused_and_grows(self):
        with WorkerPool() as pool:
            first = pool.executor(min_workers=1)
            again = pool.executor(min_workers=1)
            assert first is again
            assert pool.created == 1 and pool.grown == 0
            grown = pool.executor(min_workers=2)
            assert grown is not first
            assert pool.grown == 1 and pool.workers == 2

    def test_run_batches_preserves_order(self):
        with WorkerPool(max_workers=2) as pool:
            results = pool.run_batches(pow, [(2, i) for i in range(6)])
            assert results == [2**i for i in range(6)]

    def test_rejections(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(max_workers=0)
        with pytest.raises(ConfigurationError):
            WorkerPool().executor(min_workers=0)


# ---------------------------------------------------------------------------
# Crypto offload pool
# ---------------------------------------------------------------------------


class TestCryptoPool:
    def _pool(self, **overrides):
        options = dict(
            key_store=KeyStore(deployment_secret=b"pool-test"),
            pool=WorkerPool(max_workers=2),
            chunk_size=16,
            offload_threshold=8,
            workers=2,
        )
        options.update(overrides)
        return CryptoPool(**options)

    def test_offloaded_signatures_match_inline(self):
        crypto = self._pool()
        signer = PooledSigner(as_id=3, crypto_pool=crypto)
        messages = [f"msg-{i}".encode() for i in range(40)]
        try:
            batched = signer.sign_batch(messages)
        finally:
            crypto.pool.shutdown()
        assert batched == [signer.sign(message) for message in messages]
        assert crypto.offloaded_batches == 1
        assert crypto.offloaded_messages == 40

    def test_offloaded_verify_matches_inline_and_rejects_forgeries(self):
        crypto = self._pool()
        signer = PooledSigner(as_id=3, crypto_pool=crypto)
        verifier = PooledVerifier(crypto_pool=crypto)
        messages = [f"msg-{i}".encode() for i in range(30)]
        signatures = [signer.sign(message) for message in messages]
        items = [(3, m, s) for m, s in zip(messages, signatures)]
        # Forge every third signature (wrong AS key) — exact verdict parity.
        wrong = KeyStore(deployment_secret=b"pool-test").key_for(9)
        for index in range(0, len(items), 3):
            items[index] = (3, messages[index], wrong.sign(messages[index]))
        try:
            verdicts = verifier.verify_batch(items)
        finally:
            crypto.pool.shutdown()
        expected = [index % 3 != 0 for index in range(len(items))]
        assert verdicts == expected

    def test_small_batches_stay_inline(self):
        crypto = self._pool(offload_threshold=100)
        signer = PooledSigner(as_id=1, crypto_pool=crypto)
        signer.sign_batch([b"a", b"b"])
        assert crypto.counters() == {
            "offloaded_batches": 0,
            "offloaded_messages": 0,
            "inline_messages": 2,
        }

    def test_perf_counter_parity_between_inline_and_offloaded(self):
        """The process-global sign counter advances identically whether a
        batch ran inline or in the worker pool (parent-side accounting)."""
        messages = [f"msg-{i}".encode() for i in range(32)]

        reset_perf_counters()
        inline = self._pool(offload_threshold=1_000)
        PooledSigner(as_id=2, crypto_pool=inline).sign_batch(messages)
        inline_ops = perf_counters().get("signature_sign", 0)

        reset_perf_counters()
        offloaded = self._pool(offload_threshold=8)
        try:
            PooledSigner(as_id=2, crypto_pool=offloaded).sign_batch(messages)
        finally:
            offloaded.pool.shutdown()
        offloaded_ops = perf_counters().get("signature_sign", 0)

        assert inline_ops == offloaded_ops == len(messages)

    def test_rejections(self):
        with pytest.raises(ConfigurationError):
            self._pool(chunk_size=0)
        with pytest.raises(ConfigurationError):
            self._pool(offload_threshold=0)
