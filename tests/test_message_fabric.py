"""Tests of the unified control-plane message fabric (PR 5).

Everything inter-AS is one typed :class:`~repro.core.messages.ControlMessage`
with a shared envelope, routed through one generic transport path with
per-AS inboxes drained in batches.  These tests pin the envelope contract,
the new message capabilities (batched revocation elements, TTL, scope
limiting, path-registration traffic), the inbox batching semantics, and —
via a property test — that batched delivery and per-message delivery
produce identical database state and identical withdrawal timestamps.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.control_service import ControlServiceConfig, IrecControlService
from repro.core.databases import RegisteredPath
from repro.core.local_view import LocalTopologyView
from repro.core.messages import (
    ControlMessage,
    PCBMessage,
    PathRegistrationMessage,
    RevocationMessage,
)
from repro.core.transport import LoopbackTransport, NullTransport
from repro.crypto.keys import KeyStore
from repro.exceptions import ConfigurationError
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.engine import EventScheduler
from repro.simulation.failures import LinkState
from repro.simulation.network import SimulatedTransport
from repro.simulation.scenario import don_scenario
from repro.topology.entities import normalize_link_id
from repro.units import minutes

from tests.conftest import line_topology, make_beacon


def _link(topology, index):
    return topology.link_ids()[index]


def build_loopback_services(topology, key_store, verify_signatures=True):
    """Wire one IREC control service per AS over a loopback transport."""
    transport = LoopbackTransport(topology=topology)
    services = {}
    for as_info in topology:
        view = LocalTopologyView.from_topology(topology, as_info.as_id)
        service = IrecControlService(
            view=view,
            key_store=key_store,
            transport=transport,
            config=ControlServiceConfig(verify_signatures=verify_signatures),
        )
        services[as_info.as_id] = service
        transport.register(service)
    return transport, services


def build_simulated_services(topology, key_store, verify_signatures=False, **transport_kwargs):
    """Wire IREC control services over a scheduler-driven SimulatedTransport."""
    scheduler = EventScheduler()
    transport = SimulatedTransport(
        topology=topology, scheduler=scheduler, **transport_kwargs
    )
    services = {}
    for as_info in topology:
        view = LocalTopologyView.from_topology(topology, as_info.as_id)
        service = IrecControlService(
            view=view,
            key_store=key_store,
            transport=transport,
            config=ControlServiceConfig(verify_signatures=verify_signatures),
        )
        services[as_info.as_id] = service
        transport.register(service)
    return scheduler, transport, services


class TestEnvelope:
    def test_pcb_message_envelope(self, key_store):
        beacon = make_beacon(key_store, [(1, None, 2)])
        message = PCBMessage(
            origin_as=1, sequence=7, created_at_ms=42.0, beacon=beacon
        )
        envelope = message.envelope
        assert envelope.origin_as == 1
        assert envelope.sequence == 7
        assert envelope.created_at_ms == 42.0
        assert envelope.hop_path == ()
        assert envelope.size_bytes == len(beacon.encode()) > 0
        assert message.kind == "pcb"
        assert message.key == (1, 7)

    def test_with_hop_records_traversal(self, key_store):
        beacon = make_beacon(key_store, [(1, None, 2)])
        message = PCBMessage(origin_as=1, sequence=1, created_at_ms=0.0, beacon=beacon)
        hopped = message.with_hop(2).with_hop(3)
        assert hopped.hop_path == (2, 3)
        assert hopped.hop_count == 2
        assert message.hop_path == ()  # the original is untouched

    def test_pcb_message_requires_beacon(self):
        with pytest.raises(ConfigurationError):
            PCBMessage(origin_as=1, sequence=1, created_at_ms=0.0)

    def test_path_registration_requires_path(self):
        with pytest.raises(ConfigurationError):
            PathRegistrationMessage(origin_as=1, sequence=1, created_at_ms=0.0)

    def test_kinds_are_distinct(self):
        kinds = {PCBMessage.kind, RevocationMessage.kind, PathRegistrationMessage.kind}
        assert kinds == {"pcb", "revocation", "path_registration"}
        assert ControlMessage.kind == "control"

    def test_hop_tracking_default_off(self, key_store):
        beacon = make_beacon(key_store, [(1, None, 2)])
        assert not PCBMessage(
            origin_as=1, sequence=1, created_at_ms=0.0, beacon=beacon
        ).needs_hop_tracking()
        unscoped = RevocationMessage(origin_as=1, sequence=1, created_at_ms=0.0, failed_as=2)
        scoped = RevocationMessage(
            origin_as=1, sequence=1, created_at_ms=0.0, failed_as=2, max_hops=3
        )
        assert not unscoped.needs_hop_tracking()
        assert scoped.needs_hop_tracking()


class TestBatchedRevocationElements:
    def test_elements_are_unioned_and_normalised(self):
        message = RevocationMessage(
            origin_as=1,
            sequence=1,
            created_at_ms=0.0,
            failed_link=((2, 1), (1, 2)),
            failed_links=(((3, 2), (2, 2)), ((1, 2), (2, 1))),  # second is a dup
            failed_ases=(9, 9),
        )
        assert message.failed_links == (
            normalize_link_id((1, 2), (2, 1)),
            normalize_link_id((2, 2), (3, 2)),
        )
        assert message.failed_ases == (9,)
        assert message.failed_link == normalize_link_id((1, 2), (2, 1))

    def test_at_least_one_element_required(self):
        with pytest.raises(ConfigurationError):
            RevocationMessage(origin_as=1, sequence=1, created_at_ms=0.0)

    def test_singular_fields_stay_exclusive(self):
        with pytest.raises(ConfigurationError):
            RevocationMessage(
                origin_as=1,
                sequence=1,
                created_at_ms=0.0,
                failed_link=((1, 2), (2, 1)),
                failed_as=3,
            )

    def test_single_element_encoding_is_stable(self):
        # The pre-fabric canonical encoding — signatures over classic
        # single-element messages must stay byte-identical.
        message = RevocationMessage(
            origin_as=1, sequence=1, created_at_ms=0.0, failed_link=((1, 2), (2, 1))
        )
        assert message.encode_unsigned() == (
            "revocation(origin=1,seq=1,created=0.000,link=1.2-2.1)"
        )

    def test_batched_trace_label_joins_elements(self):
        message = RevocationMessage(
            origin_as=5,
            sequence=2,
            created_at_ms=0.0,
            failed_links=(((1, 2), (2, 1)),),
            failed_ases=(7,),
        )
        assert message.trace_label() == "revoke link 1.2-2.1+as 7 origin=5 seq=2"

    def test_batched_message_withdraws_every_element(self, key_store):
        """One message naming two failed links withdraws state crossing both."""
        topology = line_topology(5)
        scenario = don_scenario(periods=2, verify_signatures=False)
        simulation = BeaconingSimulation(topology, scenario)
        simulation.run()  # populate databases

        link_a = _link(topology, 0)  # 1-2
        link_b = _link(topology, 3)  # 4-5
        service = simulation.services[3]
        assert any(
            link_a in s.beacon.link_set() for s in service.ingress.database.all_beacons()
        )
        message = RevocationMessage(
            origin_as=2,
            sequence=99,
            created_at_ms=minutes(30),
            failed_links=(link_a, link_b),
        ).signed(simulation.services[2].builder.signer)
        assert service.on_revocation(message, on_interface=1, now_ms=minutes(30)) is True
        for stored in service.ingress.database.all_beacons():
            assert link_a not in stored.beacon.link_set()
            assert link_b not in stored.beacon.link_set()
        for path in service.path_service.all_paths():
            assert link_a not in path.segment.link_set()
            assert link_b not in path.segment.link_set()
        # One message, one withdrawal timestamp.
        assert service.revocations.applied_at[(2, 99)] == minutes(30)


class TestRevocationTTL:
    def test_stale_copy_is_dropped_without_shadowing(self, key_store):
        topology = line_topology(3)
        _transport, services = build_loopback_services(
            topology, key_store, verify_signatures=False
        )
        message = RevocationMessage(
            origin_as=1,
            sequence=1,
            created_at_ms=0.0,
            failed_link=_link(topology, 0),
            ttl_ms=100.0,
        )
        receiver = services[2]
        # Arrives 200 ms after origination: past the TTL, dropped.
        assert receiver.on_revocation(message, on_interface=1, now_ms=200.0) is False
        assert receiver.revocations.rejected_stale == 1
        assert receiver.revocations.applied_at == {}
        # An in-TTL copy arriving later still applies: staleness is
        # per-copy, the drop did not mark the key seen.
        assert receiver.on_revocation(message, on_interface=1, now_ms=50.0) is True
        assert receiver.revocations.applied_at[(1, 1)] == 50.0

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ConfigurationError):
            RevocationMessage(
                origin_as=1, sequence=1, created_at_ms=0.0, failed_as=2, ttl_ms=0.0
            )


class TestRevocationScope:
    def test_scope_limited_flood_stops_at_radius(self, key_store):
        """max_hops=1: direct neighbours withdraw, the flood goes no further."""
        topology = line_topology(4)
        _transport, services = build_loopback_services(
            topology, key_store, verify_signatures=False
        )
        failed = _link(topology, 0)  # the 1-2 link
        services[2].originate_revocation(
            now_ms=5.0, failed_link=failed, max_hops=1
        )
        # Origin applied and forwarded to AS 3 (its only non-revoked interface).
        assert services[2].revocations.applied_at != {}
        # AS 3 received a copy with one traversed hop: applied, not re-forwarded.
        assert services[3].revocations.applied_at[(2, 1)] == 0.0
        assert services[3].revocations.forwarded == 0
        # AS 4 is outside the scope and never hears about the failure.
        assert services[4].revocations.applied_at == {}

    def test_unscoped_flood_reaches_everyone(self, key_store):
        topology = line_topology(4)
        _transport, services = build_loopback_services(
            topology, key_store, verify_signatures=False
        )
        services[2].originate_revocation(now_ms=5.0, failed_link=_link(topology, 0))
        assert services[4].revocations.applied_at != {}

    def test_invalid_scope_rejected(self):
        with pytest.raises(ConfigurationError):
            RevocationMessage(
                origin_as=1, sequence=1, created_at_ms=0.0, failed_as=2, max_hops=0
            )


class TestPathRegistrationTraffic:
    def _terminated_segment(self, key_store):
        # Origin AS 3 -> terminated at AS 2 (line topology interface ids).
        return make_beacon(key_store, [(3, None, 1), (2, 2, None)])

    def test_registration_travels_and_restamps_arrival_time(self, key_store):
        topology = line_topology(3)
        scheduler, transport, services = build_simulated_services(topology, key_store)
        segment = self._terminated_segment(key_store)
        path = RegisteredPath(
            segment=segment, criteria_tags=("1sp",), registered_at_ms=0.0
        )
        message = services[2].send_path_registration(
            egress_interface=1, path=path, now_ms=0.0
        )
        assert message.kind == "path_registration"
        assert message.size_bytes() > 0
        assert services[1].path_service.paths_to(3) == []  # still in flight
        scheduler.run_until(100.0)
        registered = services[1].path_service.paths_to(3)
        assert len(registered) == 1
        # Re-stamped with the arrival time: 10 ms link + 1 ms processing.
        assert registered[0].registered_at_ms == 11.0
        assert registered[0].criteria_tags == ("1sp",)
        # Counted as fabric traffic, disjoint from PCB sends.
        assert transport.collector.total_registrations == 1
        assert transport.collector.total_sent == 0
        assert transport.collector.control_messages_total() == 1

    def test_expired_offer_is_dropped(self, key_store):
        topology = line_topology(3)
        scheduler, _transport, services = build_simulated_services(topology, key_store)
        segment = make_beacon(
            key_store, [(3, None, 1), (2, 2, None)], validity_ms=5.0
        )
        path = RegisteredPath(segment=segment, criteria_tags=("1sp",), registered_at_ms=0.0)
        services[2].send_path_registration(egress_interface=1, path=path, now_ms=0.0)
        scheduler.run_until(100.0)  # arrives at 11 ms, expired at 5 ms
        assert services[1].path_service.paths_to(3) == []

    def test_registration_lost_on_failed_link(self, key_store):
        topology = line_topology(3)
        link_state = LinkState()
        scheduler, transport, services = build_simulated_services(
            topology, key_store, link_state=link_state
        )
        link_state.fail_link(_link(topology, 0))
        segment = self._terminated_segment(key_store)
        path = RegisteredPath(segment=segment, criteria_tags=("1sp",), registered_at_ms=0.0)
        services[2].send_path_registration(egress_interface=1, path=path, now_ms=0.0)
        scheduler.run_until(100.0)
        assert services[1].path_service.paths_to(3) == []
        assert transport.collector.registrations_dropped == 1

    def test_null_transport_records_typed_messages(self, key_store):
        transport = NullTransport()
        segment = self._terminated_segment(key_store)
        message = PathRegistrationMessage(
            origin_as=2,
            sequence=1,
            created_at_ms=0.0,
            path=RegisteredPath(segment=segment, criteria_tags=(), registered_at_ms=0.0),
        )
        transport.send_message(2, 1, message)
        assert transport.messages == [(2, 1, message)]


class TestInboxBatching:
    def test_batch_size_validated(self):
        with pytest.raises(ConfigurationError):
            SimulatedTransport(
                topology=line_topology(2), scheduler=EventScheduler(), batch_size=0
            )

    def test_scenario_batch_size_validated(self):
        from repro.simulation.scenario import ScenarioConfig, one_shortest_path_spec

        with pytest.raises(ConfigurationError):
            ScenarioConfig(algorithms=(one_shortest_path_spec(),), inbox_batch_size=0)

    def test_same_tick_messages_drain_in_one_batch(self, key_store):
        """Copies of one beacon arriving together pay a single admission."""
        topology = line_topology(3)
        beacon = make_beacon(key_store, [(1, None, 2)])

        def deliver_twice(batch_size):
            scheduler, transport, services = build_simulated_services(
                topology, key_store, verify_signatures=True, batch_size=batch_size
            )
            receiver = services[2]
            # Two copies sent at the same instant land at the same tick
            # (e.g. simultaneous re-propagation over parallel links).
            transport.send_beacon(1, 2, beacon)
            transport.send_beacon(1, 2, beacon)
            scheduler.run_until(20.0)
            return receiver

        batched = deliver_twice(batch_size=None)
        assert batched.ingress.stats.received == 2
        assert batched.ingress.stats.accepted == 1
        assert batched.ingress.stats.duplicates == 1
        # One admission for the pair: no second verification of any kind.
        assert batched.ingress.stats.full_verifications == 1
        assert batched.ingress.stats.incremental_verifications == 0

        per_message = deliver_twice(batch_size=1)
        # Identical observable outcome...
        assert per_message.ingress.stats.accepted == 1
        assert per_message.ingress.stats.duplicates == 1
        # ...but the second copy paid its own (cache-assisted) admission.
        assert (
            per_message.ingress.stats.full_verifications
            + per_message.ingress.stats.incremental_verifications
            == 2
        )

    def test_pending_messages_visible_between_ticks(self, key_store):
        topology = line_topology(3)
        scheduler, transport, services = build_simulated_services(topology, key_store)
        beacon = make_beacon(key_store, [(1, None, 2)])
        transport.send_beacon(1, 2, beacon)
        assert transport.pending_messages(2) == 0  # still in flight
        scheduler.run_until(100.0)
        assert transport.pending_messages(2) == 0  # drained at its tick
        assert len(services[2].ingress.database) == 1


def _fabric_state(result):
    """Extract the observable per-AS state a delivery mode must not change."""
    state = {}
    for as_id, service in result.services.items():
        state[as_id] = (
            sorted(s.beacon.digest() for s in service.ingress.database.all_beacons()),
            sorted(
                (p.segment.digest(), p.registered_at_ms, p.criteria_tags)
                for p in service.path_service.all_paths()
            ),
            dict(service.revocations.applied_at),
        )
    return state


def _run_dynamic(batch_size, link_index, fail_minute, recover):
    topology = line_topology(4)
    scenario = don_scenario(periods=4, verify_signatures=False)
    scenario.inbox_batch_size = batch_size
    link = topology.link_ids()[link_index]
    fail_at = float(fail_minute) * 60_000.0
    scenario.at(fail_at).fail_link(link)
    if recover:
        scenario.at(fail_at + minutes(10)).recover_link(link)
    simulation = BeaconingSimulation(topology, scenario)
    result = simulation.run()
    counters = (
        result.collector.total_sent,
        result.collector.total_dropped,
        result.collector.total_revocations,
        result.collector.revocations_dropped,
        result.collector.control_messages_total(),
    )
    return _fabric_state(result), counters


class TestDispatchEquivalence:
    """Satellite: batched and per-message delivery are indistinguishable."""

    @settings(max_examples=8, deadline=None)
    @given(
        link_index=st.integers(min_value=0, max_value=2),
        fail_minute=st.integers(min_value=3, max_value=35),
        recover=st.booleans(),
    )
    def test_batched_equals_per_message(self, link_index, fail_minute, recover):
        batched_state, batched_counters = _run_dynamic(
            None, link_index, fail_minute, recover
        )
        single_state, single_counters = _run_dynamic(
            1, link_index, fail_minute, recover
        )
        assert batched_state == single_state
        assert batched_counters == single_counters

    def test_intermediate_batch_sizes_equivalent(self):
        reference = _run_dynamic(1, 1, 15, True)
        for batch_size in (2, 3, None):
            assert _run_dynamic(batch_size, 1, 15, True) == reference

    def test_golden_trace_identical_across_modes(self):
        """The full convergence trace matches between delivery modes."""
        def run(batch_size):
            topology = line_topology(5)
            scenario = don_scenario(periods=6, verify_signatures=False)
            scenario.inbox_batch_size = batch_size
            link = topology.link_ids()[1]
            scenario.at(minutes(25)).fail_link(link)
            scenario.at(minutes(45)).recover_link(link)
            simulation = BeaconingSimulation(topology, scenario)
            simulation.watch_pair(5, 1)
            result = simulation.run()
            return result.convergence.trace_text()

        assert run(None) == run(1)


class TestHopPathIntegrity:
    """PR 7: the truncated-hop-path check rejects tampering, never honesty."""

    @given(max_hops=st.integers(min_value=1, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_fabric_stamping_never_trips_the_truncation_check(
        self, max_hops
    ):
        """Property: every fabric-delivered scoped copy passes the check.

        The transport stamps each delivery, so the hop path always ends at
        the receiver; ``rejected_invalid`` must stay zero for any scope,
        and the flood still reaches exactly its hop radius.
        """
        key_store = KeyStore()
        topology = line_topology(6)
        _transport, services = build_loopback_services(
            topology, key_store, verify_signatures=True
        )
        services[2].originate_revocation(
            now_ms=5.0, failed_link=_link(topology, 0), max_hops=max_hops
        )
        assert all(
            service.revocations.rejected_invalid == 0
            for service in services.values()
        )
        # Scope radius: ASes within max_hops of origin 2 withdrew, the
        # rest never heard (AS 1 sits across the revoked link itself).
        for as_id in range(3, 7):
            distance = as_id - 2
            applied = services[as_id].revocations.applied_at != {}
            assert applied == (distance <= max_hops)

    def test_truncated_copy_is_rejected_at_the_fabric_boundary(self, key_store):
        """A hand-injected scoped copy without stamps dies rejected_invalid."""
        topology = line_topology(3)
        _transport, services = build_loopback_services(topology, key_store)
        scoped = RevocationMessage(
            origin_as=1,
            sequence=3,
            created_at_ms=0.0,
            failed_link=_link(topology, 0),
            max_hops=2,
        )
        receiver = services[3]
        assert receiver.on_revocation(scoped, on_interface=1, now_ms=1.0) is False
        assert receiver.revocations.rejected_invalid == 1
        assert receiver.revocations.applied_at == {}
