"""Tests for the stateless data plane: paths, packets, routers, end hosts."""

import pytest

from repro.core.criteria import highest_bandwidth, lowest_latency, widest_with_latency_bound
from repro.core.databases import PathService, RegisteredPath
from repro.dataplane.endhost import EndHost, PathSelectionPreference
from repro.dataplane.network import DataPlaneNetwork
from repro.dataplane.packet import Packet
from repro.dataplane.path import ForwardingPath, HopField, forwarding_path_from_segment
from repro.dataplane.router import BorderRouter
from repro.exceptions import DataPlaneError, ForwardingError, PathConstructionError

from tests.conftest import figure1_topology, make_beacon


@pytest.fixture
def segment(key_store):
    """A terminated segment: origin AS 3, beaconed 3 -> 2 -> 1 (Figure 1 left path)."""
    return make_beacon(
        key_store,
        [(3, None, 1), (2, 2, 1), (1, 1, None)],
        link_latencies=[10.0, 10.0, 0.0],
        link_bandwidths=[100.0, 100.0, None],
    )


class TestForwardingPath:
    def test_from_segment_reverses_hops(self, segment):
        path = forwarding_path_from_segment(segment)
        assert path.source_as == 1
        assert path.destination_as == 3
        assert path.as_path() == (1, 2, 3)
        assert path.hop_count == 3
        # Interfaces are swapped relative to the beaconing direction.
        assert path.hops[0] == HopField(as_id=1, ingress_interface=None, egress_interface=1)
        assert path.hops[1] == HopField(as_id=2, ingress_interface=1, egress_interface=2)
        assert path.hops[2] == HopField(as_id=3, ingress_interface=1, egress_interface=None)
        assert path.expected_latency_ms == pytest.approx(20.0)
        assert path.expected_bandwidth_mbps == pytest.approx(100.0)

    def test_only_terminated_segments(self, key_store):
        not_terminated = make_beacon(key_store, [(3, None, 1), (2, 2, 1)])
        with pytest.raises(PathConstructionError):
            forwarding_path_from_segment(not_terminated)

    def test_structural_validation(self):
        with pytest.raises(PathConstructionError):
            ForwardingPath(
                hops=(HopField(1, None, 1),), expected_latency_ms=0.0, expected_bandwidth_mbps=1.0
            )
        with pytest.raises(PathConstructionError):
            ForwardingPath(
                hops=(HopField(1, 1, 1), HopField(2, 1, None)),
                expected_latency_ms=0.0,
                expected_bandwidth_mbps=1.0,
            )

    def test_links_and_hop_for(self, segment):
        path = forwarding_path_from_segment(segment)
        assert path.links() == (((1, 1), (2, 1)), ((2, 2), (3, 1)))
        assert path.hop_for(2).as_id == 2
        with pytest.raises(PathConstructionError):
            path.hop_for(99)


class TestPacketAndRouter:
    def test_packet_cursor(self, segment):
        packet = Packet(path=forwarding_path_from_segment(segment))
        assert packet.current_as == 1
        assert not packet.at_destination
        packet.advance()
        assert packet.current_as == 2
        packet.advance()
        assert packet.at_destination
        with pytest.raises(ForwardingError):
            packet.advance()

    def test_latency_accumulation(self, segment):
        packet = Packet(path=forwarding_path_from_segment(segment))
        packet.add_latency(5.0)
        packet.add_latency(2.5)
        assert packet.accumulated_latency_ms == 7.5
        with pytest.raises(ForwardingError):
            packet.add_latency(-1.0)

    def test_router_forwards_on_hop_field(self, segment):
        packet = Packet(path=forwarding_path_from_segment(segment))
        router = BorderRouter(as_id=1, local_interfaces=(1, 2))
        egress = router.forward(packet, arrived_on=None)
        assert egress == (1, 1)

    def test_router_validates_ingress_interface(self, segment):
        packet = Packet(path=forwarding_path_from_segment(segment))
        packet.advance()  # now at AS 2, hop expects ingress interface 1
        router = BorderRouter(as_id=2, local_interfaces=(1, 2))
        with pytest.raises(ForwardingError):
            router.forward(packet, arrived_on=2)
        assert router.forward(packet, arrived_on=1) == (2, 2)

    def test_router_rejects_wrong_as(self, segment):
        packet = Packet(path=forwarding_path_from_segment(segment))
        router = BorderRouter(as_id=9, local_interfaces=(1,))
        with pytest.raises(ForwardingError):
            router.forward(packet, arrived_on=None)

    def test_router_rejects_unknown_egress(self, segment):
        packet = Packet(path=forwarding_path_from_segment(segment))
        router = BorderRouter(as_id=1, local_interfaces=(5,))
        with pytest.raises(ForwardingError):
            router.forward(packet, arrived_on=None)

    def test_local_delivery_returns_none(self, segment):
        packet = Packet(path=forwarding_path_from_segment(segment))
        packet.advance()
        packet.advance()
        router = BorderRouter(as_id=3, local_interfaces=(1, 2, 3))
        assert router.forward(packet, arrived_on=1) is None


class TestDataPlaneNetwork:
    def test_end_to_end_delivery_matches_topology(self, key_store):
        topology = figure1_topology()
        network = DataPlaneNetwork(topology=topology)
        segment = make_beacon(
            key_store,
            [(3, None, 1), (2, 2, 1), (1, 1, None)],
            link_latencies=[10.0, 10.0, 0.0],
        )
        packet = Packet(path=forwarding_path_from_segment(segment))
        report = network.deliver(packet)
        assert report.delivered, report.failure_reason
        assert report.as_path == (1, 2, 3)
        # Real link latencies of the Figure-1 topology: 10 ms + 10 ms, plus a
        # sub-millisecond intra-AS transit at AS 2.
        assert report.latency_ms == pytest.approx(20.0, abs=0.5)

    def test_forged_path_dropped(self, key_store):
        topology = figure1_topology()
        network = DataPlaneNetwork(topology=topology)
        # The segment claims AS 1 interface 1 leads to AS 5, which is false.
        forged = make_beacon(key_store, [(5, None, 1), (1, 1, None)])
        packet = Packet(path=forwarding_path_from_segment(forged))
        report = network.deliver(packet)
        assert not report.delivered
        assert report.failure_reason is not None


class TestEndHost:
    def _path_service_with(self, key_store):
        service = PathService()
        fast = make_beacon(
            key_store,
            [(3, None, 1), (2, 2, 1), (1, 1, None)],
            link_latencies=[10.0, 10.0, 0.0],
            link_bandwidths=[100.0, 100.0, None],
        )
        wide = make_beacon(
            key_store,
            [(3, None, 2), (6, 2, 1), (5, 2, 1), (4, 2, 1), (1, 2, None)],
            link_latencies=[10.0, 10.0, 10.0, 10.0, 0.0],
            link_bandwidths=[10_000.0, 10_000.0, 10_000.0, 10_000.0, None],
        )
        service.register(
            RegisteredPath(segment=fast, criteria_tags=("1sp",), registered_at_ms=0.0)
        )
        service.register(
            RegisteredPath(segment=wide, criteria_tags=("widest",), registered_at_ms=0.0)
        )
        return service

    def test_selection_by_criteria(self, key_store):
        host = EndHost(host_id="h1", as_id=1, path_service=self._path_service_with(key_store))
        latency_pick = host.select_paths(3, PathSelectionPreference(lowest_latency()), limit=1)
        bandwidth_pick = host.select_paths(3, PathSelectionPreference(highest_bandwidth()), limit=1)
        assert latency_pick[0].segment.total_latency_ms() == pytest.approx(20.0)
        assert bandwidth_pick[0].segment.bottleneck_bandwidth_mbps() == pytest.approx(10_000.0)

    def test_required_tags_filter(self, key_store):
        host = EndHost(host_id="h1", as_id=1, path_service=self._path_service_with(key_store))
        preference = PathSelectionPreference(lowest_latency(), required_tags=("widest",))
        selected = host.select_paths(3, preference, limit=5)
        assert len(selected) == 1
        assert "widest" in selected[0].criteria_tags
        assert host.paths_by_tag(3, "widest") == selected

    def test_constraint_filters_paths(self, key_store):
        host = EndHost(host_id="h1", as_id=1, path_service=self._path_service_with(key_store))
        preference = PathSelectionPreference(widest_with_latency_bound(30.0))
        selected = host.select_paths(3, preference, limit=5)
        assert all(p.segment.total_latency_ms() <= 30.0 for p in selected)

    def test_build_packet_and_no_path_error(self, key_store):
        host = EndHost(host_id="h1", as_id=1, path_service=self._path_service_with(key_store))
        packet = host.build_packet(3, PathSelectionPreference(lowest_latency()))
        assert packet.path.source_as == 1
        assert packet.path.destination_as == 3
        with pytest.raises(DataPlaneError):
            host.build_packet(42, PathSelectionPreference(lowest_latency()))

    def test_available_paths(self, key_store):
        host = EndHost(host_id="h1", as_id=1, path_service=self._path_service_with(key_store))
        assert len(host.available_paths(3)) == 2
        assert host.available_paths(42) == []
