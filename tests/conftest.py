"""Shared fixtures for the IREC reproduction test suite."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import pytest

from repro.core.beacon import Beacon, BeaconBuilder
from repro.core.extensions import ExtensionSet
from repro.core.staticinfo import StaticInfo
from repro.crypto.keys import KeyStore
from repro.crypto.signer import Signer
from repro.topology.entities import ASInfo, Interface, Link, Relationship
from repro.topology.generator import generate_topology, small_test_config
from repro.topology.geo import GeoCoordinate
from repro.topology.graph import Topology


@pytest.fixture
def key_store() -> KeyStore:
    """A fresh key store for one test."""
    return KeyStore()


@pytest.fixture
def small_topology() -> Topology:
    """A small generated topology (12 ASes), deterministic."""
    return generate_topology(small_test_config())


# ----------------------------------------------------------------------
# hand-built topologies
# ----------------------------------------------------------------------
def build_topology(
    interfaces: Dict[int, Dict[int, Tuple[float, float]]],
    links: Sequence[Tuple[Tuple[int, int], Tuple[int, int], float, float, Relationship]],
) -> Topology:
    """Build a topology from explicit interface locations and links.

    Args:
        interfaces: ``{as_id: {interface_id: (lat, lon)}}``.
        links: Each entry is ``(endpoint_a, endpoint_b, latency_ms,
            bandwidth_mbps, relationship)`` with endpoints as
            ``(as_id, interface_id)``.
    """
    topology = Topology()
    for as_id, ifaces in interfaces.items():
        info = ASInfo(as_id=as_id)
        for interface_id, (lat, lon) in ifaces.items():
            info.add_interface(
                Interface(
                    as_id=as_id,
                    interface_id=interface_id,
                    location=GeoCoordinate(lat, lon),
                )
            )
        topology.add_as(info)
    for endpoint_a, endpoint_b, latency, bandwidth, relationship in links:
        topology.add_link(
            Link(
                interface_a=endpoint_a,
                interface_b=endpoint_b,
                latency_ms=latency,
                bandwidth_mbps=bandwidth,
                relationship=relationship,
            )
        )
    return topology


def line_topology(num_ases: int = 4, latency_ms: float = 10.0, bandwidth_mbps: float = 1000.0) -> Topology:
    """A simple chain 1 - 2 - ... - n, two interfaces per interior AS."""
    interfaces: Dict[int, Dict[int, Tuple[float, float]]] = {}
    for as_id in range(1, num_ases + 1):
        interfaces[as_id] = {1: (10.0, float(as_id)), 2: (10.0, float(as_id) + 0.5)}
    links = []
    for as_id in range(1, num_ases):
        links.append(
            ((as_id, 2), (as_id + 1, 1), latency_ms, bandwidth_mbps, Relationship.CUSTOMER_PROVIDER)
        )
    return build_topology(interfaces, links)


@pytest.fixture
def chain_topology() -> Topology:
    """A four-AS chain topology."""
    return line_topology(4)


def figure1_topology() -> Topology:
    """The multi-criteria example topology of the paper's Figure 1.

    AS 1 (source) reaches AS 3 (destination) over three paths:

    * 1-2-3: 20 ms, 100 Mbit/s (shortest / lowest latency),
    * 1-4-5-6-3: 40 ms, 10 000 Mbit/s (highest bandwidth), and
    * 1-4-5-3: 30 ms, 1 000 Mbit/s (highest bandwidth within 30 ms).
    """
    interfaces = {
        1: {1: (47.0, 8.0), 2: (47.0, 8.1)},
        2: {1: (48.0, 9.0), 2: (48.0, 9.1)},
        3: {1: (49.0, 10.0), 2: (49.0, 10.1), 3: (49.0, 10.2)},
        4: {1: (46.0, 8.0), 2: (46.0, 8.1), 3: (46.0, 8.2)},
        5: {1: (45.0, 9.0), 2: (45.0, 9.1), 3: (45.0, 9.2)},
        6: {1: (44.0, 10.0), 2: (44.0, 10.1)},
    }
    peer = Relationship.PEER
    links = [
        ((1, 1), (2, 1), 10.0, 100.0, peer),
        ((2, 2), (3, 1), 10.0, 100.0, peer),
        ((1, 2), (4, 1), 10.0, 10_000.0, peer),
        ((4, 2), (5, 1), 10.0, 10_000.0, peer),
        ((5, 2), (6, 1), 10.0, 10_000.0, peer),
        ((6, 2), (3, 2), 10.0, 10_000.0, peer),
        ((5, 3), (3, 3), 10.0, 1_000.0, peer),
    ]
    return build_topology(interfaces, links)


@pytest.fixture
def multi_criteria_topology() -> Topology:
    """The Figure-1 style topology with three distinct optimal paths."""
    return figure1_topology()


# ----------------------------------------------------------------------
# beacon construction helpers
# ----------------------------------------------------------------------
def make_beacon(
    key_store: KeyStore,
    hops: Sequence[Tuple[int, Optional[int], Optional[int]]],
    link_latencies: Optional[Sequence[float]] = None,
    link_bandwidths: Optional[Sequence[float]] = None,
    intra_latencies: Optional[Sequence[float]] = None,
    created_at_ms: float = 0.0,
    extensions: Optional[ExtensionSet] = None,
    validity_ms: float = 6.0 * 3600.0 * 1000.0,
) -> Beacon:
    """Build a signed beacon from an explicit hop description.

    Args:
        key_store: Key store used for signing every hop.
        hops: Sequence of ``(as_id, ingress_interface, egress_interface)``;
            the first hop's ingress must be ``None``.
        link_latencies: Latency of each hop's egress link (default 10 ms).
        link_bandwidths: Bandwidth of each hop's egress link (default 1000).
        intra_latencies: Intra-AS latency of each hop (default 0).
        created_at_ms: Beacon creation time.
        extensions: Optional extension set stamped by the origin.
        validity_ms: Beacon lifetime.
    """
    if not hops:
        raise ValueError("a beacon needs at least one hop")
    count = len(hops)
    link_latencies = list(link_latencies or [10.0] * count)
    link_bandwidths = list(link_bandwidths or [1000.0] * count)
    intra_latencies = list(intra_latencies or [0.0] * count)

    origin_as, origin_in, origin_out = hops[0]
    if origin_in is not None:
        raise ValueError("the origin hop must not have an ingress interface")
    builder = BeaconBuilder(as_id=origin_as, signer=Signer(as_id=origin_as, key_store=key_store))
    beacon = builder.originate(
        egress_interface=origin_out,
        created_at_ms=created_at_ms,
        static_info=StaticInfo(
            link_latency_ms=link_latencies[0],
            link_bandwidth_mbps=link_bandwidths[0],
        ),
        extensions=extensions,
        validity_ms=validity_ms,
    )
    for index, (as_id, ingress, egress) in enumerate(hops[1:], start=1):
        hop_builder = BeaconBuilder(as_id=as_id, signer=Signer(as_id=as_id, key_store=key_store))
        static_info = StaticInfo(
            intra_latency_ms=intra_latencies[index],
            link_latency_ms=link_latencies[index] if egress is not None else 0.0,
            link_bandwidth_mbps=link_bandwidths[index] if egress is not None else None,
        )
        if egress is None:
            beacon = hop_builder.terminate(
                beacon, ingress_interface=ingress, static_info=static_info
            )
        else:
            beacon = hop_builder.extend(
                beacon,
                ingress_interface=ingress,
                egress_interface=egress,
                static_info=static_info,
            )
    return beacon


@pytest.fixture
def beacon_factory(key_store):
    """Expose :func:`make_beacon` bound to the test's key store."""

    def factory(hops, **kwargs):
        return make_beacon(key_store, hops, **kwargs)

    return factory
