"""Tests for the on-demand algorithm manager (fetch → verify → decode → cache)."""

import pytest

from repro.algorithms.criteria_algorithm import CriteriaSetAlgorithm
from repro.algorithms.registry import encode_builtin_payload, encode_criteria_payload
from repro.algorithms.shortest_path import KShortestPathAlgorithm
from repro.core.algorithm_registry import AlgorithmFetcher
from repro.core.criteria import shortest_widest
from repro.core.extensions import ExtensionSet
from repro.core.ondemand import OnDemandAlgorithmManager
from repro.crypto.hashing import algorithm_hash
from repro.exceptions import AlgorithmError, AlgorithmIntegrityError

from tests.conftest import make_beacon


def manager_with(payloads, cache_enabled=True):
    """Build a manager backed by a dict-transport; return (manager, call log)."""
    calls = []

    def transport(origin_as, algorithm_id):
        calls.append((origin_as, algorithm_id))
        return payloads[(origin_as, algorithm_id)]

    manager = OnDemandAlgorithmManager(
        fetcher=AlgorithmFetcher(transport=transport, cache_enabled=cache_enabled),
        cache_enabled=cache_enabled,
    )
    return manager, calls


def on_demand_beacon(key_store, origin, algorithm_id, payload):
    extensions = ExtensionSet().with_algorithm(algorithm_id, algorithm_hash(payload))
    transit_as = 900 + origin  # distinct from every origin used in the tests
    return make_beacon(
        key_store, [(origin, None, 1), (transit_as, 1, 2)], extensions=extensions
    )


class TestResolve:
    def test_resolves_builtin_payload(self, key_store):
        payload = encode_builtin_payload("5sp")
        manager, calls = manager_with({(1, "five"): payload})
        beacon = on_demand_beacon(key_store, 1, "five", payload)
        algorithm = manager.resolve(beacon)
        assert isinstance(algorithm, KShortestPathAlgorithm)
        assert algorithm.k == 5
        assert calls == [(1, "five")]

    def test_resolves_criteria_payload(self, key_store):
        payload = encode_criteria_payload(shortest_widest())
        manager, _calls = manager_with({(1, "sw"): payload})
        beacon = on_demand_beacon(key_store, 1, "sw", payload)
        algorithm = manager.resolve(beacon)
        assert isinstance(algorithm, CriteriaSetAlgorithm)
        assert algorithm.criteria_set.name == "shortest-widest"

    def test_beacon_without_extension_rejected(self, key_store, beacon_factory):
        manager, _calls = manager_with({})
        plain = beacon_factory([(1, None, 1), (2, 1, 2)])
        with pytest.raises(AlgorithmError):
            manager.resolve(plain)

    def test_hash_mismatch_rejected(self, key_store):
        good = encode_builtin_payload("5sp")
        tampered = encode_builtin_payload("1sp")
        manager, _calls = manager_with({(1, "five"): tampered})
        beacon = on_demand_beacon(key_store, 1, "five", good)
        with pytest.raises(AlgorithmIntegrityError):
            manager.resolve(beacon)

    def test_malformed_payload_rejected(self, key_store):
        payload = b"definitely not json"
        manager, _calls = manager_with({(1, "broken"): payload})
        beacon = on_demand_beacon(key_store, 1, "broken", payload)
        with pytest.raises(AlgorithmError):
            manager.resolve(beacon)


class TestCaching:
    def test_decoded_algorithm_cached_per_origin_and_hash(self, key_store):
        payload = encode_builtin_payload("5sp")
        manager, calls = manager_with({(1, "five"): payload, (2, "five"): payload})
        beacon_a = on_demand_beacon(key_store, 1, "five", payload)
        beacon_b = on_demand_beacon(key_store, 1, "five", payload)
        beacon_other_origin = on_demand_beacon(key_store, 2, "five", payload)

        first = manager.resolve(beacon_a)
        second = manager.resolve(beacon_b)
        third = manager.resolve(beacon_other_origin)
        assert first is second  # same origin + id + hash -> cached object
        assert third is not first  # different origin caches separately
        assert manager.cached_algorithm_count() == 2
        assert calls == [(1, "five"), (2, "five")]

    def test_clear_drops_decoded_cache_only(self, key_store):
        payload = encode_builtin_payload("5sp")
        manager, calls = manager_with({(1, "five"): payload})
        beacon = on_demand_beacon(key_store, 1, "five", payload)
        manager.resolve(beacon)
        manager.clear()
        assert manager.cached_algorithm_count() == 0
        manager.resolve(beacon)
        # The payload cache in the fetcher still avoids a second remote fetch.
        assert calls == [(1, "five")]

    def test_cache_disabled_refetches_and_redecodes(self, key_store):
        payload = encode_builtin_payload("5sp")
        manager, calls = manager_with({(1, "five"): payload}, cache_enabled=False)
        beacon = on_demand_beacon(key_store, 1, "five", payload)
        first = manager.resolve(beacon)
        second = manager.resolve(beacon)
        assert first is not second
        assert len(calls) == 2
        assert manager.cached_algorithm_count() == 0

    def test_republished_payload_with_new_hash_is_refetched(self, key_store):
        old_payload = encode_builtin_payload("5sp")
        new_payload = encode_builtin_payload("20sp")
        payloads = {(1, "evolving"): old_payload}
        manager, calls = manager_with(payloads)
        old_beacon = on_demand_beacon(key_store, 1, "evolving", old_payload)
        assert isinstance(manager.resolve(old_beacon), KShortestPathAlgorithm)

        # The origin republishes under the same id with a new hash; beacons
        # carrying the new hash must trigger a fresh fetch and decode.
        payloads[(1, "evolving")] = new_payload
        new_beacon = on_demand_beacon(key_store, 1, "evolving", new_payload)
        resolved = manager.resolve(new_beacon)
        assert resolved.k == 20
        assert len(calls) == 2
        assert manager.cached_algorithm_count() == 2
