"""Golden-trace regression test for the dynamic-scenario engine.

Runs a small seeded dynamic scenario (scripted failure/recovery/churn plus
generator-produced random failures) and digests the complete
event/convergence trace together with the headline collector counters.
The digest is compared against a checked-in constant, proving that the
discrete-event scheduler, the timeline application order and the
convergence bookkeeping are bit-for-bit deterministic — across runs in one
process and across processes/machines.

If a PR changes the engine's observable behaviour on purpose, update
``GOLDEN_DIGEST`` with the value printed by the failing assertion and
justify the change in the PR description.
"""

import hashlib
import random

from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.events import random_churn, random_link_failures
from repro.simulation.scenario import don_scenario
from repro.units import minutes

from tests.conftest import line_topology

# Recovery records are dated at the sub-period registration timestamp of
# the freshly re-registered (previously withdrawn) paths when those account
# for the whole disruption, not at the next period-boundary probe — the
# PR 3 sub-period convergence measurement.
# PR 4: the post-failure revocation flood became real hop-by-hop messages
# (repro.core.revocation): `revocations=` in the summary now counts
# individual transmissions instead of one counter bump per notified AS,
# and withdrawal happens when each AS *receives* a revocation, which
# shifts purge timing (and therefore PCB send/drop counts and recovery
# instants) by the propagation delays of the flood.
GOLDEN_DIGEST = "5ce362c5870d1b961141d110321bed2360d38f20be418884cfa6aac7ee21ed8d"


def run_scenario(instrument=None, factory=None):
    """Run the pinned golden scenario; return its trace text.

    ``instrument`` (if given) receives the built simulation right before
    ``run()`` — the observatory tests use it to attach telemetry and prove
    the digest is unchanged with instrumentation enabled.  ``factory``
    (default :class:`BeaconingSimulation`) builds the simulation from
    ``(topology, scenario)`` — the sharded tests pass a coordinator
    factory to prove a multi-process run reproduces this exact trace.
    """
    if factory is None:
        factory = BeaconingSimulation
    topology = line_topology(5)
    scenario = don_scenario(periods=11, verify_signatures=False)

    core_link = topology.link_ids()[1]  # the 2-3 link
    scenario.at(minutes(25)).fail_link(core_link)
    scenario.at(minutes(45)).recover_link(core_link)
    scenario.at(minutes(55)).as_leave(4).at(minutes(65)).as_join(4)
    scenario.timeline.extend(
        random_link_failures(
            topology,
            count=1,
            rng=random.Random(1234),
            start_ms=minutes(15),
            spacing_ms=minutes(10),
            recovery_after_ms=minutes(10),
        )
    )

    simulation = factory(topology, scenario)
    simulation.watch_pair(3, 1)
    simulation.watch_pair(5, 1)
    if instrument is not None:
        instrument(simulation)
    result = simulation.run()

    summary = (
        f"sent={result.collector.total_sent}"
        f" dropped={result.collector.total_dropped}"
        f" revocations={result.collector.total_revocations}"
        f" periods={result.periods_run}"
        f" final={result.final_time_ms:.3f}"
        f" records={len(result.convergence.records)}"
    )
    record_lines = [record.trace_label() for record in result.convergence.records]
    return "\n".join([result.convergence.trace_text(), *record_lines, summary])


class TestGoldenTrace:
    def test_trace_is_reproducible_within_process(self):
        assert run_scenario() == run_scenario()

    def test_trace_matches_checked_in_digest(self):
        trace = run_scenario()
        digest = hashlib.sha256(trace.encode("utf-8")).hexdigest()
        assert digest == GOLDEN_DIGEST, (
            "golden trace changed — if intentional, update GOLDEN_DIGEST to "
            f"{digest!r}; trace was:\n{trace}"
        )


# ---------------------------------------------------------------------------
# PR 7: adversarial & gray-failure family golden traces
# ---------------------------------------------------------------------------

# One pinned digest per new event family.  Each scenario runs the same
# 5-AS line as the clean golden run with one family's events layered on
# top; the digests prove the adversarial machinery (flap toggles, silent
# loss dice, forgery/replay/suppression dispatch, live topology growth)
# is bit-for-bit deterministic.  Update a value (with justification) only
# when a PR intentionally changes that family's observable behaviour.
FAMILY_DIGESTS = {
    "flap": "dcb7e8c70c5fa6ac472ced3facb84f53e92e226fec878941ebe4d4d610aa65f9",
    "gray": "8b32eaa6ae7f473d4e5d3e28d84f4da8df220e6699cb92529a004e10419be68d",
    "byzantine": "cabf009078db2dc83332a0ef98311bb85fb7327f1adc83b6507514161e46a27f",
    "churn_growth": "88fdf89b7b30598881211d32212dc5af79545604816a3a79bd0ef7de324e0fe4",
}


def run_family_scenario(family, factory=None):
    """Run one adversarial-family golden scenario; return its trace text."""
    if factory is None:
        factory = BeaconingSimulation
    topology = line_topology(5)
    # Byzantine runs verify signatures — the family's whole point is the
    # rejection path; the others keep the clean run's cheap setting.
    scenario = don_scenario(
        periods=9, verify_signatures=(family == "byzantine")
    )
    scenario.loss_seed = 42
    link = topology.link_ids()[1]  # the 2-3 link

    if family == "flap":
        scenario.at(minutes(25)).flap_link(
            link,
            schedule=(0.0, minutes(6), minutes(12), minutes(18)),
            loss_ab=0.3,
            loss_ba=0.3,
        )
    elif family == "gray":
        scenario.at(minutes(25)).gray_fail(link, drop_rate=0.7)
        scenario.at(minutes(55)).gray_recover(link)
    elif family == "byzantine":
        scenario.at(minutes(25)).forge_revocation(
            attacker_as=5, claimed_origin=2, link_id=link, count=2
        )
        scenario.at(minutes(30)).fail_link(link)
        scenario.at(minutes(40)).recover_link(link)
        scenario.at(minutes(45)).replay_revocations(attacker_as=5, count=1)
        scenario.at(minutes(50)).suppress_forwarding((4,))
    elif family == "churn_growth":
        scenario.at(minutes(25)).grow_as(6, attach_to=(3, 5))
        scenario.at(minutes(45)).grow_as(7, attach_to=(6,))
    else:  # pragma: no cover - guard against typos in parametrization
        raise ValueError(f"unknown family {family!r}")

    simulation = factory(topology, scenario)
    simulation.watch_pair(5, 1)
    result = simulation.run()
    if hasattr(result, "services"):
        rejected = sum(s.revocations.rejected_invalid for s in result.services.values())
        duplicates = sum(s.revocations.duplicates for s in result.services.values())
        ases = len(result.services)
    else:  # a sharded result carries per-AS stats instead of live services
        rejected = result.rejected_invalid_total
        duplicates = result.duplicates_total
        ases = result.service_count
    summary = (
        f"sent={result.collector.total_sent}"
        f" dropped={result.collector.total_dropped}"
        f" gray={result.collector.gray_dropped_total()}"
        f" revocations={result.collector.total_revocations}"
        f" rejected={rejected}"
        f" duplicates={duplicates}"
        f" ases={ases}"
        f" final={result.final_time_ms:.3f}"
        f" records={len(result.convergence.records)}"
    )
    record_lines = [record.trace_label() for record in result.convergence.records]
    return "\n".join([result.convergence.trace_text(), *record_lines, summary])


class TestAdversarialGoldenTraces:
    def test_family_traces_are_reproducible_within_process(self):
        for family in FAMILY_DIGESTS:
            assert run_family_scenario(family) == run_family_scenario(family)

    def test_family_traces_match_checked_in_digests(self):
        for family, expected in FAMILY_DIGESTS.items():
            trace = run_family_scenario(family)
            digest = hashlib.sha256(trace.encode("utf-8")).hexdigest()
            assert digest == expected, (
                f"{family} golden trace changed — if intentional, update "
                f"FAMILY_DIGESTS[{family!r}] to {digest!r}; trace was:\n{trace}"
            )

    def test_byzantine_events_disabled_matches_clean_digest(self):
        """Acceptance: attackers off ⇒ the pinned clean digest, untouched.

        The adversarial plumbing (loss seed, new dispatch branches, the
        suppression/forgery hooks) must be strictly pay-for-what-you-use:
        a scenario that schedules no adversarial events produces the
        exact clean golden trace.
        """
        trace = run_scenario()
        digest = hashlib.sha256(trace.encode("utf-8")).hexdigest()
        assert digest == GOLDEN_DIGEST

    def test_defeated_attack_does_not_change_registered_paths(self):
        """Forgery + replay against verifying ASes: path state identical."""

        def run(attack):
            topology = line_topology(5)
            scenario = don_scenario(periods=6, verify_signatures=True)
            if attack:
                scenario.at(minutes(25)).forge_revocation(
                    attacker_as=5,
                    claimed_origin=2,
                    link_id=topology.link_ids()[1],
                    count=3,
                )
            simulation = BeaconingSimulation(topology, scenario)
            result = simulation.run()
            paths = {
                as_id: sorted(
                    path.segment.digest()
                    for path in service.path_service.all_paths()
                )
                for as_id, service in result.services.items()
            }
            return paths, result

        clean_paths, _clean = run(attack=False)
        attacked_paths, attacked = run(attack=True)
        assert attacked_paths == clean_paths
        assert all(
            service.revocations.applied_at == {}
            for service in attacked.services.values()
        )
