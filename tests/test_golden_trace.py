"""Golden-trace regression test for the dynamic-scenario engine.

Runs a small seeded dynamic scenario (scripted failure/recovery/churn plus
generator-produced random failures) and digests the complete
event/convergence trace together with the headline collector counters.
The digest is compared against a checked-in constant, proving that the
discrete-event scheduler, the timeline application order and the
convergence bookkeeping are bit-for-bit deterministic — across runs in one
process and across processes/machines.

If a PR changes the engine's observable behaviour on purpose, update
``GOLDEN_DIGEST`` with the value printed by the failing assertion and
justify the change in the PR description.
"""

import hashlib
import random

from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.events import random_churn, random_link_failures
from repro.simulation.scenario import don_scenario
from repro.units import minutes

from tests.conftest import line_topology

# Recovery records are dated at the sub-period registration timestamp of
# the freshly re-registered (previously withdrawn) paths when those account
# for the whole disruption, not at the next period-boundary probe — the
# PR 3 sub-period convergence measurement.
# PR 4: the post-failure revocation flood became real hop-by-hop messages
# (repro.core.revocation): `revocations=` in the summary now counts
# individual transmissions instead of one counter bump per notified AS,
# and withdrawal happens when each AS *receives* a revocation, which
# shifts purge timing (and therefore PCB send/drop counts and recovery
# instants) by the propagation delays of the flood.
GOLDEN_DIGEST = "5ce362c5870d1b961141d110321bed2360d38f20be418884cfa6aac7ee21ed8d"


def run_scenario():
    """Run the pinned golden scenario; return its trace text."""
    topology = line_topology(5)
    scenario = don_scenario(periods=11, verify_signatures=False)

    core_link = topology.link_ids()[1]  # the 2-3 link
    scenario.at(minutes(25)).fail_link(core_link)
    scenario.at(minutes(45)).recover_link(core_link)
    scenario.at(minutes(55)).as_leave(4).at(minutes(65)).as_join(4)
    scenario.timeline.extend(
        random_link_failures(
            topology,
            count=1,
            rng=random.Random(1234),
            start_ms=minutes(15),
            spacing_ms=minutes(10),
            recovery_after_ms=minutes(10),
        )
    )

    simulation = BeaconingSimulation(topology, scenario)
    simulation.watch_pair(3, 1)
    simulation.watch_pair(5, 1)
    result = simulation.run()

    summary = (
        f"sent={result.collector.total_sent}"
        f" dropped={result.collector.total_dropped}"
        f" revocations={result.collector.total_revocations}"
        f" periods={result.periods_run}"
        f" final={result.final_time_ms:.3f}"
        f" records={len(result.convergence.records)}"
    )
    record_lines = [record.trace_label() for record in result.convergence.records]
    return "\n".join([result.convergence.trace_text(), *record_lines, summary])


class TestGoldenTrace:
    def test_trace_is_reproducible_within_process(self):
        assert run_scenario() == run_scenario()

    def test_trace_matches_checked_in_digest(self):
        trace = run_scenario()
        digest = hashlib.sha256(trace.encode("utf-8")).hexdigest()
        assert digest == GOLDEN_DIGEST, (
            "golden trace changed — if intentional, update GOLDEN_DIGEST to "
            f"{digest!r}; trace was:\n{trace}"
        )
