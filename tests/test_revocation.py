"""Tests of the revocation control-plane traffic (PR 4).

The revocation subsystem replaces the old instantaneous counter flood:
after a failure, the adjacent ASes originate signed, sequence-numbered
:class:`~repro.core.revocation.RevocationMessage` objects that travel
hop-by-hop through the simulated transport.  These tests pin the message
model (signing, dedup, validation), the propagation-ordered withdrawal
semantics, the interaction with :class:`LinkState` (revocations crossing a
failed link are lost), and the exactly-once overhead accounting.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.control_service import ControlServiceConfig, IrecControlService
from repro.core.local_view import LocalTopologyView
from repro.core.revocation import RevocationMessage, RevocationState
from repro.core.transport import LoopbackTransport
from repro.crypto.keys import KeyStore
from repro.crypto.signer import Signer, Verifier
from repro.exceptions import ConfigurationError
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import don_scenario
from repro.topology.entities import normalize_link_id
from repro.units import minutes

from tests.conftest import line_topology


def _link(topology, index):
    return topology.link_ids()[index]


def build_loopback_services(topology, key_store, verify_signatures=True):
    """Wire one IREC control service per AS over a loopback transport."""
    transport = LoopbackTransport(topology=topology)
    services = {}
    for as_info in topology:
        view = LocalTopologyView.from_topology(topology, as_info.as_id)
        service = IrecControlService(
            view=view,
            key_store=key_store,
            transport=transport,
            config=ControlServiceConfig(verify_signatures=verify_signatures),
        )
        services[as_info.as_id] = service
        transport.register(service)
    return transport, services


class TestRevocationMessage:
    def test_exactly_one_element_required(self):
        with pytest.raises(ConfigurationError):
            RevocationMessage(origin_as=1, sequence=1, created_at_ms=0.0)
        with pytest.raises(ConfigurationError):
            RevocationMessage(
                origin_as=1,
                sequence=1,
                created_at_ms=0.0,
                failed_link=((1, 2), (2, 1)),
                failed_as=3,
            )

    def test_link_id_is_normalised(self):
        message = RevocationMessage(
            origin_as=2,
            sequence=1,
            created_at_ms=0.0,
            failed_link=((2, 1), (1, 2)),
        )
        assert message.failed_link == normalize_link_id((1, 2), (2, 1))

    def test_sequence_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RevocationMessage(origin_as=1, sequence=0, created_at_ms=0.0, failed_as=2)

    def test_sign_verify_and_tamper(self, key_store):
        signer = Signer(as_id=4, key_store=key_store)
        verifier = Verifier(key_store=key_store)
        message = RevocationMessage(
            origin_as=4, sequence=7, created_at_ms=123.0, failed_as=9
        ).signed(signer)
        message.verify(verifier)  # must not raise
        forged = RevocationMessage(
            origin_as=4,
            sequence=8,  # different content, reused signature
            created_at_ms=123.0,
            failed_as=9,
            signature=message.signature,
        )
        from repro.exceptions import SignatureError

        with pytest.raises(SignatureError):
            forged.verify(verifier)

    def test_trace_labels_are_stable(self):
        link_message = RevocationMessage(
            origin_as=2, sequence=3, created_at_ms=0.0, failed_link=((2, 2), (3, 1))
        )
        as_message = RevocationMessage(
            origin_as=5, sequence=1, created_at_ms=0.0, failed_as=4
        )
        assert link_message.trace_label() == "revoke link 2.2-3.1 origin=2 seq=3"
        assert as_message.trace_label() == "revoke as 4 origin=5 seq=1"


class TestRevocationState:
    def test_dedup_window_prunes_old_keys(self):
        state = RevocationState(dedup_window_ms=1_000.0)
        state.mark_seen((1, 1), 0.0)
        assert state.is_duplicate((1, 1), 500.0)
        # Past the window the key is forgotten: a replay would re-apply,
        # which is harmless because withdrawal is idempotent.
        assert not state.is_duplicate((1, 1), 5_000.0)

    def test_bulk_pruning_bounds_memory_over_long_flood(self):
        """Satellite regression: lazy bulk pruning really evicts old keys.

        A long flood of distinct revocations advances simulated time far
        past the dedup window; without the bulk prune the seen-set would
        grow with every message forever.  With one key per millisecond and
        a 1-second window, at most ~1000 keys are inside the window at any
        time, so the mapping must stay bounded by the prune threshold —
        and the evicted keys must be gone from the dict, not merely
        expired-on-probe.
        """
        state = RevocationState(dedup_window_ms=1_000.0)
        total = 20_000
        for sequence in range(1, total + 1):
            state.mark_seen((1, sequence), float(sequence))
        # Bounded: the prune threshold (4096) plus the entry that
        # triggered the pass, never the 20k keys seen overall.
        assert len(state._seen) <= 4097
        # Old entries were evicted from the mapping itself.
        assert (1, 1) not in state._seen
        assert not state.is_duplicate((1, 1), float(total))
        # Recent entries inside the window survive the pruning.
        assert (1, total) in state._seen
        assert state.is_duplicate((1, total), float(total))

    def test_applied_from_filters_by_origin(self):
        state = RevocationState()
        state.record_applied((1, 1), 10.0)
        state.record_applied((2, 1), 20.0)
        state.record_applied((1, 2), 30.0)
        assert sorted(state.applied_from(1)) == [10.0, 30.0]
        # First application wins; replays do not move the timestamp.
        state.record_applied((1, 1), 99.0)
        assert sorted(state.applied_from(1)) == [10.0, 30.0]


class TestHandlerDedupAndVerification:
    def test_duplicate_messages_apply_once(self, key_store):
        topology = line_topology(3)
        _transport, services = build_loopback_services(topology, key_store)
        origin = services[1]
        message = RevocationMessage(
            origin_as=1,
            sequence=1,
            created_at_ms=0.0,
            failed_link=_link(topology, 0),
        ).signed(origin.builder.signer)

        receiver = services[2]
        assert receiver.on_revocation(message, on_interface=1, now_ms=5.0) is True
        assert receiver.on_revocation(message, on_interface=1, now_ms=6.0) is False
        assert receiver.revocations.received == 2
        assert receiver.revocations.duplicates == 1
        # Applied exactly once, at the first delivery.
        assert receiver.revocations.applied_at[(1, 1)] == 5.0
        # Forwarded only on first receipt: AS 2's other interface leads to
        # AS 3, which deduplicates nothing (fresh) and has nowhere to
        # re-forward, so exactly one onward transmission happened.
        assert receiver.revocations.forwarded == 1

    def test_invalid_signature_rejected_not_forwarded(self, key_store):
        topology = line_topology(3)
        transport, services = build_loopback_services(topology, key_store)
        message = RevocationMessage(
            origin_as=1,
            sequence=1,
            created_at_ms=0.0,
            failed_link=_link(topology, 0),
            signature=b"forged",
        )
        receiver = services[2]
        assert receiver.on_revocation(message, on_interface=1, now_ms=5.0) is False
        assert receiver.revocations.rejected_invalid == 1
        assert receiver.revocations.applied_at == {}
        assert transport.revocations_sent == 0
        # Not marked seen: an authentic copy arriving later must process.
        valid = RevocationMessage(
            origin_as=1,
            sequence=1,
            created_at_ms=0.0,
            failed_link=_link(topology, 0),
        ).signed(services[1].builder.signer)
        assert receiver.on_revocation(valid, on_interface=1, now_ms=6.0) is True

    def test_verification_skipped_when_disabled(self, key_store):
        topology = line_topology(3)
        _transport, services = build_loopback_services(
            topology, key_store, verify_signatures=False
        )
        unsigned = RevocationMessage(
            origin_as=1,
            sequence=1,
            created_at_ms=0.0,
            failed_link=_link(topology, 0),
        )
        assert services[2].on_revocation(unsigned, on_interface=1, now_ms=5.0) is True


class TestPropagationOrderedWithdrawal:
    def test_withdrawal_times_increase_with_hop_distance(self):
        """In a line, ASes withdraw strictly later the farther they sit from
        the failure — the acceptance criterion of the revocation PR."""
        topology = line_topology(6)
        scenario = don_scenario(periods=3, verify_signatures=False)
        failed = _link(topology, 2)  # the 3-4 link
        scenario.at(minutes(15)).fail_link(failed)
        simulation = BeaconingSimulation(topology, scenario)
        result = simulation.run()

        def applied(as_id, origin):
            times = result.service(as_id).revocations.applied_from(origin)
            assert len(times) == 1, f"AS {as_id} saw {len(times)} messages from {origin}"
            return times[0]

        # Left of the failure: origin 3, flooding 3 -> 2 -> 1.
        assert applied(3, 3) < applied(2, 3) < applied(1, 3)
        # Right of the failure: origin 4, flooding 4 -> 5 -> 6.
        assert applied(4, 4) < applied(5, 4) < applied(6, 4)
        # The origins themselves withdraw at the failure instant.
        assert applied(3, 3) == minutes(15)
        assert applied(4, 4) == minutes(15)
        # No copy ever crossed the failed link: the left side never hears
        # origin 4 and vice versa.
        for as_id in (1, 2, 3):
            assert result.service(as_id).revocations.applied_from(4) == []
        for as_id in (4, 5, 6):
            assert result.service(as_id).revocations.applied_from(3) == []

    def test_revocation_crossing_failed_link_is_dropped(self):
        """A revocation whose carrying link is itself unavailable is lost;
        ASes behind the second failure never learn of the first."""
        topology = line_topology(6)
        scenario = don_scenario(periods=3, verify_signatures=False)
        near = _link(topology, 1)  # the 2-3 link
        far = _link(topology, 3)  # the 4-5 link
        # Same timestamp: both links are down before any flood message moves.
        scenario.at(minutes(15)).fail_link(near).at(minutes(15)).fail_link(far)
        simulation = BeaconingSimulation(topology, scenario)
        result = simulation.run()

        # AS 4's revocation of link 4-5 reaches AS 3 but dies on the failed
        # 2-3 link when AS 3 re-forwards it (AS 3 does not know 2-3 is down).
        assert result.collector.revocations_dropped > 0
        assert result.service(3).revocations.applied_from(4) != []
        for as_id in (1, 2):
            assert result.service(as_id).revocations.applied_from(4) == []
        # Symmetrically, AS 5/6 never hear about the 2-3 failure.
        for as_id in (5, 6):
            assert result.service(as_id).revocations.applied_from(3) == []

    def test_withdrawal_is_delayed_until_arrival(self):
        """State crossing the failed link survives at remote ASes exactly
        until the revocation reaches them (not purged at event time)."""
        topology = line_topology(4)
        scenario = don_scenario(periods=6, verify_signatures=False)
        failed = _link(topology, 1)  # the 2-3 link
        fail_at = minutes(25)
        scenario.at(fail_at).fail_link(failed)
        simulation = BeaconingSimulation(topology, scenario)
        result = simulation.run()
        # AS 4 is one hop from origin 3: per-hop delay is link latency
        # (10 ms) + processing (1 ms), so withdrawal lands at +11 ms.
        assert result.service(4).revocations.applied_from(3) == [fail_at + 11.0]
        # And the databases really are clean afterwards.
        for service in result.services.values():
            for stored in service.ingress.database.all_beacons():
                assert failed not in stored.beacon.links()
            for path in service.path_service.all_paths():
                assert failed not in path.segment.links()


class TestOverheadAccounting:
    def test_single_failure_overhead_pinned(self):
        """Satellite regression: each revocation message counts exactly once.

        In a 5-AS line with the middle-adjacent 2-3 link failing, the flood
        is exactly three transmissions (2->1, 3->4, 4->5): the origins skip
        the revoked link itself and the line has no other edges.
        """
        topology = line_topology(5)
        scenario = don_scenario(periods=4, verify_signatures=False)
        scenario.at(minutes(15)).fail_link(_link(topology, 1))
        simulation = BeaconingSimulation(topology, scenario)
        result = simulation.run()
        collector = result.collector
        assert collector.total_revocations == 3
        assert collector.revocations_dropped == 0
        # Exactly-once: revocation transmissions are disjoint from PCB
        # sends and pull returns in the overall message count.
        assert (
            collector.control_messages_total()
            == collector.total_sent + collector.returned_beacons() + 3
        )
        # They are binned into the period the failure fired in.
        assert collector.revocations_in_period(1) == 3

    def test_revocation_send_does_not_touch_pcb_counters(self):
        from repro.simulation.collector import MetricsCollector

        collector = MetricsCollector()
        collector.record_revocation(1, 2, 0.0)
        assert collector.total_revocations == 1
        assert collector.total_sent == 0
        assert collector.pcbs_per_interface_per_period() == []
        assert collector.control_messages_total() == 1


class TestLegacyParticipation:
    def test_legacy_as_forwards_and_withdraws(self):
        """Legacy SCION ASes join the flood: they withdraw on arrival and
        re-forward, so a mixed deployment still converges."""
        topology = line_topology(4)
        scenario = don_scenario(periods=5, verify_signatures=False)
        scenario.legacy_ases = (3,)
        failed = _link(topology, 0)  # the 1-2 link
        scenario.at(minutes(25)).fail_link(failed)
        simulation = BeaconingSimulation(topology, scenario)
        result = simulation.run()
        legacy = result.service(3)
        # The legacy AS received origin 2's message and passed it on to AS 4.
        assert legacy.revocations.applied_from(2) != []
        assert legacy.revocations.forwarded == 1
        assert result.service(4).revocations.applied_from(2) != []
        for path in legacy.path_service.all_paths():
            assert failed not in path.segment.links()


class TestNegativeCacheAgeBound:
    """Satellite regression (PR 7): the negative cache expires by message age.

    Each beacon bounce re-applies and re-caches the bounced revocation with
    a fresh stamp, so a pair of caches can keep refreshing each other; the
    stamp alone therefore never expires.  The message's own
    ``created_at_ms`` is the loop breaker — once the revocation itself is
    older than the dedup window, the cache entry dies no matter how
    recently it was stamped, and beacons over the long-recovered element
    flow again.
    """

    def test_fresh_stamp_cannot_outlive_the_message_age(self):
        state = RevocationState(dedup_window_ms=1_000.0)
        message = RevocationMessage(
            origin_as=1, sequence=1, created_at_ms=0.0,
            failed_link=((1, 2), (2, 1)),
        )
        link = message.failed_link
        state.cache_revoked_elements(message, now_ms=0.0)
        assert state.revoked_recently([link], [], now_ms=500.0) is message
        # A bouncing peer refreshes the stamp long after the window ...
        state.cache_revoked_elements(message, now_ms=5_000.0)
        # ... but the message itself is ancient: the entry is expired and
        # evicted instead of bouncing the beacon forever.
        assert state.revoked_recently([link], [], now_ms=5_100.0) is None
        assert link not in state.revoked_links

    def test_as_cache_honours_the_same_age_bound(self):
        state = RevocationState(dedup_window_ms=1_000.0)
        message = RevocationMessage(
            origin_as=1, sequence=1, created_at_ms=0.0, failed_as=3
        )
        state.cache_revoked_elements(message, now_ms=5_000.0)
        assert state.revoked_recently([], [3], now_ms=5_100.0) is None
        assert 3 not in state.revoked_ases

    def test_stale_stamp_still_expires(self):
        state = RevocationState(dedup_window_ms=1_000.0)
        message = RevocationMessage(
            origin_as=1, sequence=1, created_at_ms=4_900.0, failed_as=3
        )
        state.cache_revoked_elements(message, now_ms=5_000.0)
        # Fresh message, fresh stamp: covered.
        assert state.revoked_recently([], [3], now_ms=5_100.0) is message
        # Fresh message, stale stamp: expired.
        state.cache_revoked_elements(message, now_ms=5_000.0)
        assert state.revoked_recently([], [3], now_ms=6_500.0) is None


class TestByzantineRejection:
    """Satellite (PR 7): malformed revocations die at the right check.

    Every rejection path must bump its own counter and must *not* mark the
    key seen — an authentic copy arriving later always still applies.
    """

    def test_forged_signature_rejected_without_seen_marking(self, key_store):
        topology = line_topology(3)
        _transport, services = build_loopback_services(topology, key_store)
        receiver = services[2]
        link = _link(topology, 0)
        attacker = Signer(as_id=3, key_store=key_store)
        forged = RevocationMessage(
            origin_as=1, sequence=7, created_at_ms=0.0, failed_link=link
        ).signed(attacker)

        assert receiver.on_revocation(forged, on_interface=1, now_ms=1.0) is False
        assert receiver.revocations.rejected_invalid == 1
        assert receiver.revocations.applied_at == {}

        authentic = RevocationMessage(
            origin_as=1, sequence=7, created_at_ms=0.0, failed_link=link
        ).signed(Signer(as_id=1, key_store=key_store))
        assert receiver.on_revocation(authentic, on_interface=1, now_ms=2.0) is True
        assert receiver.revocations.applied_at[(1, 7)] == 2.0

    def test_replayed_key_counted_as_duplicate_and_applies_once(self, key_store):
        topology = line_topology(3)
        _transport, services = build_loopback_services(topology, key_store)
        receiver = services[3]
        message = RevocationMessage(
            origin_as=1, sequence=4, created_at_ms=0.0, failed_link=_link(topology, 0)
        ).signed(Signer(as_id=1, key_store=key_store))

        assert receiver.on_revocation(message, on_interface=1, now_ms=1.0) is True
        before = dict(receiver.revocations.applied_at)
        for replay in range(3):
            assert (
                receiver.on_revocation(message, on_interface=1, now_ms=2.0 + replay)
                is False
            )
        assert receiver.revocations.duplicates == 3
        assert receiver.revocations.applied_at == before

    def test_truncated_hop_path_rejected_without_seen_marking(self, key_store):
        """A scoped copy whose hop path does not end here was tampered with."""
        topology = line_topology(3)
        _transport, services = build_loopback_services(topology, key_store)
        receiver = services[2]
        signer = Signer(as_id=1, key_store=key_store)
        scoped = RevocationMessage(
            origin_as=1, sequence=9, created_at_ms=0.0,
            failed_link=_link(topology, 0), max_hops=4,
        ).signed(signer)

        # Hop path truncated to nothing: the attacker tried to reset the
        # propagation budget.  Rejected, not marked seen.
        assert receiver.on_revocation(scoped, on_interface=1, now_ms=1.0) is False
        # Hop path ending at a different AS: same tampering, same fate.
        misdirected = scoped.with_hop(3)
        assert receiver.on_revocation(misdirected, on_interface=1, now_ms=1.5) is False
        assert receiver.revocations.rejected_invalid == 2
        assert receiver.revocations.applied_at == {}

        # The honestly stamped copy still applies afterwards.
        stamped = scoped.with_hop(2)
        assert receiver.on_revocation(stamped, on_interface=1, now_ms=2.0) is True
        assert receiver.revocations.applied_at[(1, 9)] == 2.0

    def test_over_ttl_copy_rejected_with_stale_counter(self, key_store):
        topology = line_topology(3)
        _transport, services = build_loopback_services(topology, key_store)
        receiver = services[2]
        message = RevocationMessage(
            origin_as=1, sequence=2, created_at_ms=0.0,
            failed_link=_link(topology, 0), ttl_ms=50.0,
        ).signed(Signer(as_id=1, key_store=key_store))

        assert receiver.on_revocation(message, on_interface=1, now_ms=500.0) is False
        assert receiver.revocations.rejected_stale == 1
        assert receiver.revocations.rejected_invalid == 0
        assert receiver.revocations.applied_at == {}
        # Not marked seen: an in-TTL copy still applies.
        assert receiver.on_revocation(message, on_interface=1, now_ms=10.0) is True

    @given(
        sequence=st.integers(min_value=1, max_value=10**6),
        tamper=st.sampled_from(["signature", "origin", "element"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_tampered_messages_never_apply(self, sequence, tamper):
        """Property: whatever the forger changes, the copy dies unseen."""
        key_store = KeyStore()
        topology = line_topology(3)
        _transport, services = build_loopback_services(topology, key_store)
        receiver = services[2]
        link = _link(topology, 0)
        signer = Signer(as_id=1, key_store=key_store)
        authentic = RevocationMessage(
            origin_as=1, sequence=sequence, created_at_ms=0.0, failed_link=link
        ).signed(signer)

        if tamper == "signature":
            forged = replace(authentic, signature=b"\x00" + authentic.signature[1:])
        elif tamper == "origin":
            # Same signature bytes, different claimed origin.
            forged = replace(authentic, origin_as=3)
        else:
            # Same origin/signature, different revoked element.
            forged = replace(
                authentic, failed_link=None, failed_links=(_link(topology, 1),)
            )

        assert receiver.on_revocation(forged, on_interface=1, now_ms=1.0) is False
        assert receiver.revocations.rejected_invalid == 1
        assert receiver.revocations.applied_at == {}
        # The authentic copy is never shadowed by the rejected forgery.
        assert receiver.on_revocation(authentic, on_interface=1, now_ms=2.0) is True
        assert authentic.key in receiver.revocations.applied_at
