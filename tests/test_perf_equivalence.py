"""Equivalence tests for the beacon fast path.

The hot-path optimizations (memoized encodings/digests, the sweep-based
Pareto frontier and the ingress gateway's incremental signature
verification) are pure performance work: they must be observationally
identical to the naive implementations.  These property tests pin that
down:

* the memoized digest equals an independent, from-scratch re-encoding and
  re-hashing of the beacon after arbitrary ``with_entry``/termination
  chains, and every element of the prefix-digest chain equals the digest
  of the corresponding prefix beacon,
* the sweep/skyline ``pareto_frontier`` returns exactly the same labelled
  pairs (same order) as the quadratic reference on random vectors with 2–4
  metrics, including duplicates and maximize-objective metrics, and
* incremental verification accepts exactly what full verification accepts
  and rejects beacons tampered at every entry position, with or without a
  warm verified-prefix cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algebra import (
    BANDWIDTH,
    HOP_COUNT,
    LATENCY,
    PathVector,
    RELIABILITY,
    pareto_frontier,
    pareto_frontier_naive,
)
from repro.core.beacon import Beacon, BeaconBuilder
from repro.core.extensions import ExtensionSet
from repro.core.ingress import IngressGateway, VerifiedPrefixCache
from repro.core.staticinfo import StaticInfo
from repro.crypto.keys import KeyStore
from repro.crypto.signer import Signer, Verifier
from repro.exceptions import SignatureError

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
latencies = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)
bandwidths = st.one_of(
    st.none(), st.floats(min_value=1.0, max_value=100_000.0, allow_nan=False)
)

hop_specs = st.lists(
    st.tuples(latencies, latencies, bandwidths), min_size=1, max_size=7
)


def build_chain(key_store, hops, terminate=False, extensions=None):
    """Build a signed beacon from (intra_latency, link_latency, bandwidth) hops."""
    origin_builder = BeaconBuilder(
        as_id=10, signer=Signer(as_id=10, key_store=key_store)
    )
    intra, link, bandwidth = hops[0]
    beacon = origin_builder.originate(
        egress_interface=1,
        created_at_ms=0.0,
        static_info=StaticInfo(link_latency_ms=link, link_bandwidth_mbps=bandwidth),
        extensions=extensions,
    )
    for index, (intra, link, bandwidth) in enumerate(hops[1:], start=1):
        as_id = 10 + index
        builder = BeaconBuilder(as_id=as_id, signer=Signer(as_id=as_id, key_store=key_store))
        last = terminate and index == len(hops) - 1
        info = StaticInfo(
            intra_latency_ms=intra,
            link_latency_ms=0.0 if last else link,
            link_bandwidth_mbps=None if last else bandwidth,
        )
        if last:
            beacon = builder.terminate(beacon, ingress_interface=2, static_info=info)
        else:
            beacon = builder.extend(
                beacon, ingress_interface=2, egress_interface=1, static_info=info
            )
    return beacon


def naive_encode(beacon: Beacon) -> bytes:
    """Re-encode a beacon from its raw fields, bypassing every memo."""
    parts = [
        f"pcb(origin={beacon.origin_as},created={beacon.created_at_ms:.3f},"
        f"validity={beacon.validity_ms:.3f},{beacon.extensions.encode()})"
    ]
    for entry in beacon.entries:
        unsigned = (
            f"entry(as={entry.as_id},in={entry.ingress_interface},"
            f"out={entry.egress_interface},{entry.static_info.encode()})"
        )
        parts.append(f"{unsigned}sig({entry.signature.hex()})")
    return "|".join(parts).encode("utf-8")


# ----------------------------------------------------------------------
# (a) digests
# ----------------------------------------------------------------------
class TestDigestEquivalence:
    @given(hops=hop_specs, terminate=st.booleans(), with_extension=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_cached_digest_matches_naive_reencode(self, hops, terminate, with_extension):
        key_store = KeyStore()
        extensions = (
            ExtensionSet().with_interface_group(3) if with_extension else None
        )
        beacon = build_chain(
            key_store, hops, terminate=terminate and len(hops) > 1, extensions=extensions
        )
        expected = hashlib.sha256(naive_encode(beacon)).hexdigest()
        assert beacon.digest() == expected
        # The memo must be stable across repeated calls.
        assert beacon.digest() == expected
        assert beacon.encode() == naive_encode(beacon)

    @given(hops=hop_specs)
    @settings(max_examples=40, deadline=None)
    def test_prefix_digest_chain_matches_prefix_beacons(self, hops):
        key_store = KeyStore()
        beacon = build_chain(key_store, hops)
        chain = beacon.prefix_digests()
        assert len(chain) == beacon.hop_count
        for index in range(beacon.hop_count):
            prefix = replace(beacon, entries=beacon.entries[: index + 1])
            assert chain[index] == hashlib.sha256(naive_encode(prefix)).hexdigest()
        assert beacon.digest() == chain[-1]

    def test_extension_reuses_parent_entry_encodings(self, key_store):
        parent = build_chain(key_store, [(0.0, 5.0, 100.0), (1.0, 5.0, 100.0)])
        builder = BeaconBuilder(as_id=99, signer=Signer(as_id=99, key_store=key_store))
        child = builder.extend(parent, ingress_interface=1, egress_interface=2)
        # The shared entries are the same objects, so their encodings are
        # computed once and shared between parent and child.
        assert child.entries[:2] == parent.entries[:2]
        assert child.entries[0] is parent.entries[0]
        assert child.digest() != parent.digest()
        assert hashlib.sha256(naive_encode(child)).hexdigest() == child.digest()


# ----------------------------------------------------------------------
# (b) pareto frontier
# ----------------------------------------------------------------------
METRIC_POOLS = (
    (LATENCY,),  # single-metric degenerate case: frontier = all minima
    (BANDWIDTH,),  # ...including a maximize-objective single metric
    (LATENCY, BANDWIDTH),
    (LATENCY, HOP_COUNT, BANDWIDTH),
    (LATENCY, HOP_COUNT, BANDWIDTH, RELIABILITY),
)


class TestParetoEquivalence:
    @given(
        pool_index=st.integers(min_value=0, max_value=len(METRIC_POOLS) - 1),
        rows=st.lists(
            st.lists(st.integers(min_value=0, max_value=4), min_size=4, max_size=4),
            min_size=0,
            max_size=40,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_sweep_matches_quadratic_reference(self, pool_index, rows):
        metrics = METRIC_POOLS[pool_index]
        labelled = [
            (
                index,
                PathVector(
                    metrics=metrics,
                    values=tuple(float(v) for v in row[: len(metrics)]),
                ),
            )
            for index, row in enumerate(rows)
        ]
        fast = pareto_frontier(labelled)
        naive = pareto_frontier_naive(labelled)
        assert [label for label, _v in fast] == [label for label, _v in naive]
        assert [v.values for _l, v in fast] == [v.values for _l, v in naive]

    @given(
        rows=st.lists(
            st.lists(st.integers(min_value=0, max_value=2), min_size=3, max_size=3),
            min_size=0,
            max_size=60,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_duplicate_heavy_three_metric_sweep_matches_reference(self, rows):
        # Values drawn from {0, 1, 2}³ force many exact duplicates, the
        # regime where the k ≥ 3 skyline scan is easiest to get wrong
        # (duplicates must all be kept: they do not dominate each other).
        metrics = (LATENCY, HOP_COUNT, BANDWIDTH)
        labelled = [
            (index, PathVector(metrics=metrics, values=tuple(float(v) for v in row)))
            for index, row in enumerate(rows)
        ]
        fast = pareto_frontier(labelled)
        naive = pareto_frontier_naive(labelled)
        assert [label for label, _v in fast] == [label for label, _v in naive]

    @given(
        values=st.lists(st.integers(min_value=0, max_value=4), min_size=0, max_size=40),
        maximize=st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_single_metric_degenerate_matches_reference(self, values, maximize):
        metric = BANDWIDTH if maximize else LATENCY
        labelled = [
            (index, PathVector(metrics=(metric,), values=(float(v),)))
            for index, v in enumerate(values)
        ]
        fast = pareto_frontier(labelled)
        naive = pareto_frontier_naive(labelled)
        assert [label for label, _v in fast] == [label for label, _v in naive]
        if values:
            best = max(values) if maximize else min(values)
            # Every optimum (including duplicates) survives, nothing else.
            assert [v.values[0] for _l, v in fast] == [
                float(v) for v in values if v == best
            ]

    def test_duplicates_are_all_kept(self):
        vector = PathVector(metrics=(LATENCY, BANDWIDTH), values=(10.0, 100.0))
        other = PathVector(metrics=(LATENCY, BANDWIDTH), values=(10.0, 100.0))
        dominated = PathVector(metrics=(LATENCY, BANDWIDTH), values=(20.0, 50.0))
        frontier = pareto_frontier([("a", vector), ("b", other), ("c", dominated)])
        assert [label for label, _v in frontier] == ["a", "b"]

    def test_duplicates_are_all_kept_with_three_metrics(self):
        metrics = (LATENCY, HOP_COUNT, BANDWIDTH)
        twin_a = PathVector(metrics=metrics, values=(10.0, 3.0, 100.0))
        twin_b = PathVector(metrics=metrics, values=(10.0, 3.0, 100.0))
        dominated = PathVector(metrics=metrics, values=(20.0, 4.0, 50.0))
        incomparable = PathVector(metrics=metrics, values=(5.0, 9.0, 100.0))
        frontier = pareto_frontier(
            [("a", twin_a), ("b", twin_b), ("c", dominated), ("d", incomparable)]
        )
        assert [label for label, _v in frontier] == ["a", "b", "d"]

    def test_infinite_values_are_handled(self):
        # Bottleneck identity is +inf; the sweep must not choke on it.
        best = PathVector(metrics=(LATENCY, BANDWIDTH), values=(1.0, float("inf")))
        worse = PathVector(metrics=(LATENCY, BANDWIDTH), values=(2.0, 100.0))
        frontier = pareto_frontier([("best", best), ("worse", worse)])
        assert [label for label, _v in frontier] == ["best"]
        assert pareto_frontier([]) == []


# ----------------------------------------------------------------------
# (c) incremental verification
# ----------------------------------------------------------------------
def tamper(beacon: Beacon, position: int) -> Beacon:
    """Return a copy of ``beacon`` with entry ``position`` altered."""
    entry = beacon.entries[position]
    forged = replace(
        entry,
        static_info=replace(entry.static_info, intra_latency_ms=entry.static_info.intra_latency_ms + 1.0),
    )
    entries = beacon.entries[:position] + (forged,) + beacon.entries[position + 1 :]
    return replace(beacon, entries=entries)


class TestIncrementalVerification:
    @given(hops=hop_specs)
    @settings(max_examples=40, deadline=None)
    def test_incremental_accepts_what_full_accepts(self, hops):
        key_store = KeyStore()
        beacon = build_chain(key_store, hops)
        verifier = Verifier(key_store=key_store)
        beacon.verify(verifier)  # full verification accepts

        gateway = IngressGateway(as_id=999_999, verifier=verifier)
        assert gateway.receive(beacon, on_interface=1, now_ms=0.0)
        assert gateway.stats.full_verifications == 1
        assert gateway.stats.signatures_checked == beacon.hop_count

        # Re-verifying an extension only checks the new entry's signature.
        builder = BeaconBuilder(as_id=777, signer=Signer(as_id=777, key_store=key_store))
        child = builder.extend(beacon, ingress_interface=3, egress_interface=4)
        assert gateway.receive(child, on_interface=1, now_ms=0.0)
        assert gateway.stats.incremental_verifications == 1
        assert gateway.stats.signatures_checked == beacon.hop_count + 1

    @given(hops=hop_specs, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_tampered_entries_rejected_at_every_position(self, hops, data):
        key_store = KeyStore()
        beacon = build_chain(key_store, hops)
        verifier = Verifier(key_store=key_store)
        position = data.draw(
            st.integers(min_value=0, max_value=beacon.hop_count - 1), label="position"
        )
        forged = tamper(beacon, position)
        with pytest.raises(SignatureError):
            forged.verify(verifier)
        gateway = IngressGateway(as_id=999_999, verifier=verifier)
        assert not gateway.receive(forged, on_interface=1, now_ms=0.0)
        assert gateway.stats.rejected_signature == 1

    def test_warm_cache_still_rejects_tampered_extension(self, key_store):
        beacon = build_chain(key_store, [(0.0, 5.0, 100.0), (1.0, 5.0, 100.0)])
        verifier = Verifier(key_store=key_store)
        gateway = IngressGateway(as_id=999_999, verifier=verifier)
        assert gateway.receive(beacon, on_interface=1, now_ms=0.0)

        builder = BeaconBuilder(as_id=777, signer=Signer(as_id=777, key_store=key_store))
        child = builder.extend(beacon, ingress_interface=3, egress_interface=4)

        # Tampering the new entry: the cached prefix is valid, but the
        # incremental check of the appended entry must still fail.
        forged_new = tamper(child, child.hop_count - 1)
        assert not gateway.receive(forged_new, on_interface=1, now_ms=0.0)

        # Tampering a cached-prefix entry changes the prefix digests, so the
        # cache cannot match and full verification fails.
        forged_old = tamper(child, 0)
        assert not gateway.receive(forged_old, on_interface=1, now_ms=0.0)
        assert gateway.stats.rejected_signature == 2

        # The untampered extension is still accepted afterwards.
        assert gateway.receive(child, on_interface=1, now_ms=0.0)

    def test_prefix_cache_is_bounded(self):
        cache = VerifiedPrefixCache(max_entries=3)
        for index in range(5):
            cache.add(f"digest-{index}")
        assert len(cache) == 3
        assert "digest-0" not in cache
        assert "digest-4" in cache
