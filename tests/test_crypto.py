"""Tests for the crypto substrate: keys, signatures and hashes."""

import pytest

from repro.crypto.hashing import algorithm_hash, beacon_digest, short_hash
from repro.crypto.keys import ASKeyPair, KeyStore, derive_key
from repro.crypto.signer import Signer, Verifier
from repro.exceptions import SignatureError


class TestKeys:
    def test_derivation_is_deterministic(self):
        assert derive_key(5) == derive_key(5)

    def test_different_ases_get_different_keys(self):
        assert derive_key(5).secret != derive_key(6).secret

    def test_deployment_secret_changes_keys(self):
        assert derive_key(5, b"a") != derive_key(5, b"b")

    def test_sign_and_verify(self):
        key = derive_key(7)
        signature = key.sign(b"hello")
        assert key.verify(b"hello", signature)
        assert not key.verify(b"tampered", signature)

    def test_key_store_caches(self):
        store = KeyStore()
        assert store.key_for(3) is store.key_for(3)
        assert len(store) == 1

    def test_key_store_contains_any_as(self):
        store = KeyStore()
        assert 123456 in store


class TestSignerVerifier:
    def test_round_trip(self):
        store = KeyStore()
        signer = Signer(as_id=9, key_store=store)
        verifier = Verifier(key_store=store)
        signature = signer.sign(b"beacon bytes")
        verifier.verify(9, b"beacon bytes", signature)  # does not raise
        assert verifier.is_valid(9, b"beacon bytes", signature)

    def test_wrong_as_rejected(self):
        store = KeyStore()
        signature = Signer(as_id=9, key_store=store).sign(b"msg")
        verifier = Verifier(key_store=store)
        with pytest.raises(SignatureError):
            verifier.verify(10, b"msg", signature)

    def test_tampered_message_rejected(self):
        store = KeyStore()
        signature = Signer(as_id=9, key_store=store).sign(b"msg")
        assert not Verifier(key_store=store).is_valid(9, b"other", signature)

    def test_foreign_deployment_rejected(self):
        signature = Signer(as_id=9, key_store=KeyStore(deployment_secret=b"x")).sign(b"msg")
        verifier = Verifier(key_store=KeyStore(deployment_secret=b"y"))
        assert not verifier.is_valid(9, b"msg", signature)


class TestHashing:
    def test_algorithm_hash_is_hex_sha256(self):
        digest = algorithm_hash(b"payload")
        assert len(digest) == 64
        assert digest == algorithm_hash(b"payload")
        assert digest != algorithm_hash(b"payload2")

    def test_algorithm_hash_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            algorithm_hash("not bytes")  # type: ignore[arg-type]

    def test_beacon_digest_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            beacon_digest(42)  # type: ignore[arg-type]

    def test_short_hash_length(self):
        assert len(short_hash(b"x", length=8)) == 8

    def test_short_hash_rejects_bad_length(self):
        with pytest.raises(ValueError):
            short_hash(b"x", length=0)
        with pytest.raises(ValueError):
            short_hash(b"x", length=65)
