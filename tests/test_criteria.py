"""Tests for criteria, criteria sets and metric extraction from beacons."""

import pytest

from repro.core.algebra import BANDWIDTH, HOP_COUNT, LATENCY, Accumulation, MetricDefinition, Objective
from repro.core.criteria import (
    Composition,
    Constraint,
    CriteriaSet,
    Criterion,
    StandardMetrics,
    fewest_hops,
    highest_bandwidth,
    latency_bandwidth_pareto,
    lowest_latency,
    shortest_widest,
    widest_with_latency_bound,
)
from repro.exceptions import AlgebraError, ConfigurationError

from tests.conftest import make_beacon


@pytest.fixture
def three_beacons(key_store):
    """Three beacons: fast/narrow, slow/wide, and balanced."""
    fast = make_beacon(
        key_store,
        [(1, None, 1), (2, 1, 2)],
        link_latencies=[10.0, 10.0],
        link_bandwidths=[100.0, 100.0],
    )
    wide = make_beacon(
        key_store,
        [(1, None, 1), (4, 1, 2), (5, 1, 2), (6, 1, 2)],
        link_latencies=[10.0, 10.0, 10.0, 10.0],
        link_bandwidths=[10_000.0, 10_000.0, 10_000.0, 10_000.0],
    )
    balanced = make_beacon(
        key_store,
        [(1, None, 1), (4, 1, 3), (5, 1, 3)],
        link_latencies=[10.0, 10.0, 10.0],
        link_bandwidths=[1_000.0, 1_000.0, 1_000.0],
    )
    return fast, wide, balanced


class TestStandardMetrics:
    def test_extraction(self, three_beacons):
        fast, wide, _balanced = three_beacons
        assert StandardMetrics.extract(LATENCY, fast) == pytest.approx(20.0)
        assert StandardMetrics.extract(HOP_COUNT, fast) == 2.0
        assert StandardMetrics.extract(BANDWIDTH, wide) == 10_000.0

    def test_unknown_metric_rejected(self, three_beacons):
        unknown = MetricDefinition(
            name="jitter", accumulation=Accumulation.ADDITIVE, objective=Objective.MINIMIZE
        )
        with pytest.raises(AlgebraError):
            StandardMetrics.extract(unknown, three_beacons[0])

    def test_register_new_metric(self, three_beacons):
        new_metric = MetricDefinition(
            name="as-path-cube", accumulation=Accumulation.ADDITIVE, objective=Objective.MINIMIZE
        )
        StandardMetrics.register(new_metric, lambda beacon: float(beacon.hop_count) ** 3)
        assert StandardMetrics.extract(new_metric, three_beacons[0]) == 8.0
        with pytest.raises(AlgebraError):
            StandardMetrics.register(new_metric, lambda beacon: 0.0)

    def test_vector_for(self, three_beacons):
        vector = StandardMetrics.vector_for([LATENCY, BANDWIDTH], three_beacons[0])
        assert vector.value_of(LATENCY) == pytest.approx(20.0)

    def test_known_metrics_contains_standards(self):
        names = StandardMetrics.known_metrics()
        assert "latency_ms" in names
        assert "bandwidth_mbps" in names


class TestConstraint:
    def test_needs_a_bound(self):
        with pytest.raises(ConfigurationError):
            Constraint(metric=LATENCY)

    def test_maximum(self):
        constraint = Constraint(metric=LATENCY, maximum=30.0)
        assert constraint.satisfied_by(30.0)
        assert not constraint.satisfied_by(31.0)

    def test_minimum(self):
        constraint = Constraint(metric=BANDWIDTH, minimum=100.0)
        assert constraint.satisfied_by(100.0)
        assert not constraint.satisfied_by(99.0)

    def test_describe(self):
        constraint = Constraint(metric=LATENCY, maximum=30.0, minimum=1.0)
        text = constraint.describe()
        assert "latency_ms >= 1" in text
        assert "latency_ms <= 30" in text


class TestCriteriaSets:
    def test_requires_name_and_criteria(self):
        with pytest.raises(ConfigurationError):
            CriteriaSet(name="", criteria=(Criterion(LATENCY),))
        with pytest.raises(ConfigurationError):
            CriteriaSet(name="x", criteria=())

    def test_lowest_latency_picks_fast_path(self, three_beacons):
        fast, wide, balanced = three_beacons
        assert lowest_latency().best([wide, balanced, fast]) is fast

    def test_highest_bandwidth_picks_wide_path(self, three_beacons):
        fast, wide, balanced = three_beacons
        assert highest_bandwidth().best([fast, balanced, wide]) is wide

    def test_fewest_hops(self, three_beacons):
        fast, wide, balanced = three_beacons
        assert fewest_hops().best([wide, balanced, fast]) is fast

    def test_latency_bounded_widest_matches_figure1(self, three_beacons):
        """Example #2 of the paper: widest path with latency <= 30 ms."""
        fast, wide, balanced = three_beacons
        criteria = widest_with_latency_bound(30.0)
        assert criteria.best([fast, wide, balanced]) is balanced

    def test_latency_bound_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            widest_with_latency_bound(0.0)

    def test_shortest_widest_breaks_ties_by_latency(self, key_store):
        wide_long = make_beacon(
            key_store,
            [(1, None, 1), (2, 1, 2), (3, 1, 2)],
            link_latencies=[20.0, 20.0, 20.0],
            link_bandwidths=[1000.0, 1000.0, 1000.0],
        )
        wide_short = make_beacon(
            key_store,
            [(1, None, 1), (4, 1, 2)],
            link_latencies=[10.0, 10.0],
            link_bandwidths=[1000.0, 1000.0],
        )
        assert shortest_widest().best([wide_long, wide_short]) is wide_short

    def test_rank_orders_best_first(self, three_beacons):
        fast, wide, balanced = three_beacons
        ranked = lowest_latency().rank([wide, balanced, fast])
        assert ranked[0] is fast
        assert ranked[-1] is wide

    def test_select_respects_limit(self, three_beacons):
        selected = lowest_latency().select(list(three_beacons), limit=2)
        assert len(selected) == 2
        assert lowest_latency().select(list(three_beacons), limit=0) == []

    def test_admits_filters_constraints(self, three_beacons):
        fast, wide, _balanced = three_beacons
        criteria = widest_with_latency_bound(30.0)
        assert criteria.admits(fast)
        assert not criteria.admits(wide)

    def test_best_of_empty_is_none(self):
        assert lowest_latency().best([]) is None


class TestParetoComposition:
    def test_pareto_keeps_incomparable_paths(self, three_beacons):
        fast, wide, balanced = three_beacons
        criteria = latency_bandwidth_pareto()
        selected = criteria.select([fast, wide, balanced], limit=10)
        assert fast in selected
        assert wide in selected
        assert balanced in selected  # each is better than the others on one axis

    def test_pareto_drops_dominated(self, key_store, three_beacons):
        fast, wide, balanced = three_beacons
        dominated = make_beacon(
            key_store,
            [(1, None, 1), (7, 1, 2), (8, 1, 2)],
            link_latencies=[30.0, 30.0, 30.0],
            link_bandwidths=[50.0, 50.0, 50.0],
        )
        criteria = latency_bandwidth_pareto()
        selected = criteria.select([fast, wide, balanced, dominated], limit=10)
        assert dominated not in selected

    def test_pareto_rank_places_dominant_first(self, key_store, three_beacons):
        fast, wide, balanced = three_beacons
        dominated = make_beacon(
            key_store,
            [(1, None, 1), (7, 1, 2), (8, 1, 2)],
            link_latencies=[30.0, 30.0, 30.0],
            link_bandwidths=[50.0, 50.0, 50.0],
        )
        ranked = latency_bandwidth_pareto().rank([dominated, fast, wide, balanced])
        assert ranked[-1] is dominated


class TestSpecRoundTrip:
    def test_to_spec_and_back(self):
        original = widest_with_latency_bound(25.0)
        restored = CriteriaSet.from_spec(original.to_spec())
        assert restored.name == original.name
        assert restored.composition is Composition.LEXICOGRAPHIC
        assert len(restored.criteria) == len(original.criteria)
        assert restored.constraints[0].maximum == 25.0

    def test_pareto_spec_round_trip(self):
        original = latency_bandwidth_pareto()
        restored = CriteriaSet.from_spec(original.to_spec())
        assert restored.composition is Composition.PARETO

    def test_unknown_metric_in_spec(self):
        spec = {
            "name": "broken",
            "criteria": [{"metric": "no-such-metric", "objective": "minimize"}],
        }
        with pytest.raises(ConfigurationError):
            CriteriaSet.from_spec(spec)

    def test_structurally_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            CriteriaSet.from_spec({"criteria": []})
