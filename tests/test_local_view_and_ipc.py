"""Tests for the per-AS local topology view and the gateway↔RAC IPC model."""

import pytest

from repro.core.ipc import IPCChannel, IPCStats
from repro.core.local_view import LocalTopologyView
from repro.exceptions import UnknownLinkError

from tests.conftest import figure1_topology, make_beacon


class TestLocalTopologyView:
    @pytest.fixture
    def view(self):
        return LocalTopologyView.from_topology(figure1_topology(), 5)

    def test_basic_accessors(self, view):
        assert view.as_id == 5
        assert view.interface_ids() == (1, 2, 3)

    def test_link_and_neighbor(self, view):
        link = view.link_of(1)
        assert link.as_pair == (4, 5)
        assert view.neighbor_of(1) == (4, 2)
        assert view.neighbor_of(3) == (3, 3)
        with pytest.raises(UnknownLinkError):
            view.link_of(99)

    def test_intra_latency_symmetric_and_zero_on_same_interface(self, view):
        assert view.intra_latency_ms(1, 1) == 0.0
        assert view.intra_latency_ms(1, 2) == pytest.approx(view.intra_latency_ms(2, 1))
        assert view.intra_latency_ms(1, 2) >= 0.0

    def test_static_info_for_transit_hop(self, view):
        info = view.static_info_for(1, 2)
        link = view.link_of(2)
        assert info.link_latency_ms == pytest.approx(link.latency_ms)
        assert info.link_bandwidth_mbps == pytest.approx(link.bandwidth_mbps)
        assert info.intra_latency_ms == pytest.approx(view.intra_latency_ms(1, 2))
        assert info.egress_location is not None
        assert info.ingress_location is not None

    def test_static_info_for_origin_and_terminal(self, view):
        origin_info = view.static_info_for(None, 1)
        assert origin_info.intra_latency_ms == 0.0
        assert origin_info.link_latency_ms > 0.0
        assert origin_info.ingress_location is None

        terminal_info = view.static_info_for(2, None)
        assert terminal_info.link_latency_ms == 0.0
        assert terminal_info.link_bandwidth_mbps is None
        assert terminal_info.egress_location is None

    def test_unattached_interfaces_are_excluded(self):
        # AS 4 of the Figure-1 fixture declares interface 3 but never links it.
        view = LocalTopologyView.from_topology(figure1_topology(), 4)
        assert 3 not in view.interface_ids()


class TestIPCChannel:
    def test_marshalling_costs_scale_with_beacon_count(self, key_store, beacon_factory):
        channel = IPCChannel()
        small = [beacon_factory([(1, None, 1), (2, 1, 2)])]
        large = [
            beacon_factory([(origin, None, 1), (2, 1, 2), (3, 1, 2)])
            for origin in range(10, 40)
        ]
        _wire_small, _ = channel.marshal_beacons(small)
        bytes_small = channel.stats.bytes_transferred
        channel.stats.reset()
        _wire_large, _ = channel.marshal_beacons(large)
        assert channel.stats.bytes_transferred > bytes_small
        assert channel.stats.calls == 1

    def test_modelled_latency_added(self, key_store, beacon_factory):
        channel = IPCChannel(per_call_latency_ms=5.0, per_kilobyte_latency_ms=1.0)
        beacons = [beacon_factory([(1, None, 1), (2, 1, 2)])]
        _wire, cost_ms = channel.marshal_beacons(beacons)
        assert cost_ms >= 5.0
        assert channel.stats.modelled_latency_ms >= 5.0
        assert channel.stats.total_ms >= channel.stats.modelled_latency_ms

    def test_transfer_results_counts_payload(self, key_store, beacon_factory):
        channel = IPCChannel()
        beacon = beacon_factory([(1, None, 1), (2, 1, 2)])
        cost_ms = channel.transfer_results([(1, beacon), (2, beacon)])
        assert cost_ms >= 0.0
        assert channel.stats.bytes_transferred > 0
        assert channel.stats.calls == 1

    def test_stats_reset(self):
        stats = IPCStats()
        stats.record(payload_bytes=100, elapsed_ms=1.0, modelled_ms=2.0)
        assert stats.total_ms == 3.0
        stats.reset()
        assert stats.calls == 0
        assert stats.total_ms == 0.0
