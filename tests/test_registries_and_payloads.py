"""Tests for algorithm catalogues, payload serialization and on-demand fetching."""

import pytest

from repro.algorithms.bandwidth import ShortestWidestAlgorithm
from repro.algorithms.criteria_algorithm import CriteriaSetAlgorithm
from repro.algorithms.pull_disjoint import LinkAvoidingAlgorithm
from repro.algorithms.registry import (
    AlgorithmCatalog,
    decode_payload,
    default_catalog,
    encode_builtin_payload,
    encode_criteria_payload,
    encode_link_avoiding_payload,
    encode_restricted_python_payload,
)
from repro.algorithms.shortest_path import KShortestPathAlgorithm
from repro.core.algorithm_registry import AlgorithmFetcher, AlgorithmRepository
from repro.core.criteria import widest_with_latency_bound
from repro.core.sandbox import MAX_PAYLOAD_BYTES, RestrictedPythonAlgorithm
from repro.crypto.hashing import algorithm_hash
from repro.exceptions import (
    AlgorithmError,
    AlgorithmIntegrityError,
    UnknownAlgorithmError,
)


class TestAlgorithmCatalog:
    def test_default_catalog_contains_paper_algorithms(self):
        catalog = default_catalog()
        for name in ("1sp", "5sp", "20sp", "delay", "hd", "widest", "shortest-widest", "pareto"):
            assert name in catalog

    def test_create_with_parameters(self):
        catalog = default_catalog()
        algorithm = catalog.create("ksp", k=7)
        assert isinstance(algorithm, KShortestPathAlgorithm)
        assert algorithm.k == 7

    def test_unknown_name(self):
        with pytest.raises(UnknownAlgorithmError):
            default_catalog().create("does-not-exist")

    def test_register_is_append_only(self):
        catalog = AlgorithmCatalog()
        catalog.register("mine", lambda **kw: KShortestPathAlgorithm(k=1))
        with pytest.raises(AlgorithmError):
            catalog.register("mine", lambda **kw: KShortestPathAlgorithm(k=2))
        assert catalog.names() == ("mine",)


class TestPayloadRoundTrips:
    def test_criteria_payload(self):
        payload = encode_criteria_payload(widest_with_latency_bound(30.0), paths_per_interface=3)
        algorithm = decode_payload(payload)
        assert isinstance(algorithm, CriteriaSetAlgorithm)
        assert algorithm.paths_per_interface == 3
        assert algorithm.criteria_set.constraints[0].maximum == 30.0

    def test_link_avoiding_payload(self):
        payload = encode_link_avoiding_payload([((1, 2), (3, 4)), ((5, 6), (7, 8))])
        algorithm = decode_payload(payload)
        assert isinstance(algorithm, LinkAvoidingAlgorithm)
        assert ((1, 2), (3, 4)) in algorithm.avoid_links

    def test_builtin_payload(self):
        payload = encode_builtin_payload("shortest-widest", {"paths_per_interface": 2})
        algorithm = decode_payload(payload)
        assert isinstance(algorithm, ShortestWidestAlgorithm)
        assert algorithm.paths_per_interface == 2

    def test_restricted_python_payload(self):
        payload = encode_restricted_python_payload("latency_ms + hop_count", paths_per_interface=2)
        algorithm = decode_payload(payload)
        assert isinstance(algorithm, RestrictedPythonAlgorithm)
        assert algorithm.paths_per_interface == 2

    def test_malformed_payload(self):
        with pytest.raises(AlgorithmError):
            decode_payload(b"not json")
        with pytest.raises(AlgorithmError):
            decode_payload(b"[1, 2, 3]")
        with pytest.raises(AlgorithmError):
            decode_payload(b'{"kind": "mystery"}')

    def test_payload_encoding_is_deterministic(self):
        a = encode_criteria_payload(widest_with_latency_bound(30.0))
        b = encode_criteria_payload(widest_with_latency_bound(30.0))
        assert a == b
        assert algorithm_hash(a) == algorithm_hash(b)


class TestAlgorithmRepository:
    def test_publish_and_fetch(self):
        repository = AlgorithmRepository(as_id=1)
        payload = encode_builtin_payload("1sp")
        digest = repository.publish("my-algo", payload)
        assert digest == algorithm_hash(payload)
        assert repository.fetch("my-algo") == payload
        assert repository.hash_of("my-algo") == digest
        assert "my-algo" in repository
        assert repository.published_ids() == ("my-algo",)

    def test_fetch_unknown(self):
        with pytest.raises(UnknownAlgorithmError):
            AlgorithmRepository(as_id=1).fetch("nope")

    def test_empty_id_rejected(self):
        with pytest.raises(UnknownAlgorithmError):
            AlgorithmRepository(as_id=1).publish("", b"x")

    def test_oversized_payload_rejected(self):
        with pytest.raises(AlgorithmIntegrityError):
            AlgorithmRepository(as_id=1).publish("big", b"x" * (MAX_PAYLOAD_BYTES + 1))

    def test_republish_replaces(self):
        repository = AlgorithmRepository(as_id=1)
        repository.publish("algo", b"one")
        repository.publish("algo", b"two")
        assert repository.fetch("algo") == b"two"


class TestAlgorithmFetcher:
    def _fetcher(self, payload, cache_enabled=True):
        calls = []

        def transport(origin_as, algorithm_id):
            calls.append((origin_as, algorithm_id))
            return payload

        return AlgorithmFetcher(transport=transport, cache_enabled=cache_enabled), calls

    def test_fetch_verifies_hash(self):
        payload = encode_builtin_payload("1sp")
        fetcher, _calls = self._fetcher(payload)
        assert fetcher.fetch(5, "a", algorithm_hash(payload)) == payload
        with pytest.raises(AlgorithmIntegrityError):
            fetcher.fetch(5, "b", "00" * 32)

    def test_cache_prevents_repeat_fetches(self):
        payload = encode_builtin_payload("1sp")
        fetcher, calls = self._fetcher(payload)
        expected = algorithm_hash(payload)
        fetcher.fetch(5, "a", expected)
        fetcher.fetch(5, "a", expected)
        fetcher.fetch(5, "a", expected)
        assert len(calls) == 1
        assert fetcher.remote_fetch_count() == 1
        assert len(fetcher.history) == 3

    def test_cache_disabled_refetches(self):
        payload = encode_builtin_payload("1sp")
        fetcher, calls = self._fetcher(payload, cache_enabled=False)
        expected = algorithm_hash(payload)
        fetcher.fetch(5, "a", expected)
        fetcher.fetch(5, "a", expected)
        assert len(calls) == 2

    def test_clear_cache(self):
        payload = encode_builtin_payload("1sp")
        fetcher, calls = self._fetcher(payload)
        expected = algorithm_hash(payload)
        fetcher.fetch(5, "a", expected)
        fetcher.clear_cache()
        fetcher.fetch(5, "a", expected)
        assert len(calls) == 2

    def test_oversized_fetched_payload_rejected(self):
        big = b"x" * (MAX_PAYLOAD_BYTES + 1)
        fetcher, _calls = self._fetcher(big)
        with pytest.raises(AlgorithmIntegrityError):
            fetcher.fetch(5, "a", algorithm_hash(big))
