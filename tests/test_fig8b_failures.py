"""Failure-injection integration test closing the Figure-8b loop.

Figure 8b argues that a registered path set with tolerable-link-failure
count TLF keeps an AS pair connected under up to TLF link failures (the
min-cut of the set's links is TLF + 1).  This test builds a crafted diamond
topology with two fully link-disjoint routes, registers paths through a
real beaconing simulation, computes the predicted TLF from the registered
segments, and then *injects actual failures*:

* every failure set of size TLF leaves the pair connected, and
* the crafted min-cut of size TLF + 1 disconnects it,

so the analytical prediction and empirical failure injection agree.  A
second test drives the failures through the dynamic-scenario engine and
checks the surviving registered paths directly.
"""

from itertools import combinations

from repro.analysis.disjointness_eval import tolerable_link_failures
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.failures import LinkFailureInjector, minimum_failures_to_disconnect
from repro.simulation.scenario import disjointness_scenario, don_scenario
from repro.topology.entities import Relationship
from repro.units import minutes

from tests.conftest import build_topology

SOURCE_AS = 4
ORIGIN_AS = 1


def diamond_topology():
    """1 -(2)- 4 and 1 -(3)- 4: two fully link-disjoint routes."""
    interfaces = {
        1: {1: (47.0, 8.0), 2: (47.0, 8.1)},
        2: {1: (48.0, 9.0), 2: (48.0, 9.1)},
        3: {1: (46.0, 9.0), 2: (46.0, 9.1)},
        4: {1: (47.0, 10.0), 2: (47.0, 10.1)},
    }
    peer = Relationship.PEER
    links = [
        ((1, 1), (2, 1), 10.0, 1000.0, peer),
        ((2, 2), (4, 1), 10.0, 1000.0, peer),
        ((1, 2), (3, 1), 12.0, 1000.0, peer),
        ((3, 2), (4, 2), 12.0, 1000.0, peer),
    ]
    return build_topology(interfaces, links)


def registered_segments(topology, periods=4):
    """Run beaconing and return AS 4's registered segments towards AS 1."""
    scenario = disjointness_scenario(periods=periods, verify_signatures=False)
    result = BeaconingSimulation(topology, scenario).run()
    paths = result.service(SOURCE_AS).path_service.paths_to(ORIGIN_AS)
    assert paths, "beaconing registered no paths for the watched pair"
    return [path.segment for path in paths]


class TestFig8bLoop:
    def test_predicted_tlf_survives_injection_and_breaks_past_it(self):
        topology = diamond_topology()
        segments = registered_segments(topology)

        min_cut = tolerable_link_failures(
            [segment.links() for segment in segments], ORIGIN_AS, SOURCE_AS
        )
        assert min_cut == 2  # two fully disjoint routes were registered
        predicted_tlf = min_cut - 1  # failures the set tolerates by prediction

        path_links = sorted({link for segment in segments for link in segment.links()})

        # Every failure set of the tolerable size keeps the pair connected.
        for failure_set in combinations(path_links, predicted_tlf):
            injector = LinkFailureInjector(topology=topology)
            for link in failure_set:
                injector.fail_link(link)
            assert injector.pair_still_connected(segments), (
                f"pair disconnected by {len(failure_set)} failures, "
                f"predicted to tolerate {predicted_tlf}: {failure_set}"
            )

        # One more failure — the crafted min cut — disconnects the pair.
        injector = LinkFailureInjector(topology=topology)
        injector.fail_link(((1, 1), (2, 1)))  # upper route, first hop
        injector.fail_link(((1, 2), (3, 1)))  # lower route, first hop
        assert not injector.pair_still_connected(segments)

        # The empirical wrapper agrees with the analytical prediction.
        assert minimum_failures_to_disconnect(segments, ORIGIN_AS, SOURCE_AS) == min_cut

    def test_dynamic_engine_agrees_with_prediction(self):
        topology = diamond_topology()
        scenario = don_scenario(periods=5, verify_signatures=False)
        upper = ((1, 1), (2, 1))
        lower = ((1, 2), (3, 1))
        # Fail one route after paths exist (tolerated), then the second
        # (past the tolerable count: the pair must disconnect).
        scenario.at(2.5 * minutes(10)).fail_link(upper)
        scenario.at(3.5 * minutes(10)).fail_link(lower)
        simulation = BeaconingSimulation(topology, scenario)
        simulation.watch_pair(SOURCE_AS, ORIGIN_AS)

        simulation.run_period()  # period 0: propagation reaches AS 4
        simulation.run_period()  # period 1: AS 4 registers both routes
        simulation.run_period()  # period 2 (failure of the upper route fires)
        assert simulation.usable_path_count(SOURCE_AS, ORIGIN_AS) >= 1

        simulation.run_period()  # period 3 (failure of the lower route fires)
        assert simulation.usable_path_count(SOURCE_AS, ORIGIN_AS) == 0
        simulation.run_period()  # period 4: nothing can reconverge

        result_records = simulation.convergence.records
        assert result_records and not result_records[-1].recovered
