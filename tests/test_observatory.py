"""Tests for the simulation observatory (``repro.obs``).

Covers the four pillars the PR pins down:

* registry semantics (typed handles, get-or-create, labeled callback
  gauges, snapshot shape) and snapshot **determinism** under seeded runs;
* span nesting/reentrancy self-time accounting and the **disabled-mode
  zero-allocation** guarantee at the instrumented hot seams;
* the bounded queue-delay reservoir (memory stays fixed over a
  100k-observation stream while p50/p99 stay within tolerance);
* exporters: Prometheus-text round-trip, sampler → ``result_logger``
  schema, and the hypothesis property that enabling telemetry never
  changes the golden trace digest.
"""

import hashlib
import os
import sys
import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import reset_perf_counters
from repro.crypto.keys import derive_key
from repro.exceptions import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    QuantileReservoir,
    TelemetrySampler,
    bind_simulation,
    parse_prometheus_text,
    prometheus_text,
    registry_samples,
    spans,
)
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.collector import MetricsCollector
from repro.simulation.scenario import don_scenario
from repro.units import minutes

from tests.conftest import line_topology
from tests.test_golden_trace import GOLDEN_DIGEST, run_scenario

_BENCHMARKS = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks")
if _BENCHMARKS not in sys.path:
    sys.path.insert(0, _BENCHMARKS)

from result_logger import validate_record  # noqa: E402


@pytest.fixture(autouse=True)
def _clean_spans():
    """Every test starts and ends with spans disabled and empty."""
    spans.disable()
    spans.reset()
    yield
    spans.disable()
    spans.reset()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("msgs", help="messages")
        counter.inc()
        counter.inc(4)
        gauge = registry.gauge("depth")
        gauge.set(7)
        histogram = registry.histogram("delay_ms")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        snap = registry.snapshot()
        assert snap["msgs"] == 5
        assert snap["depth"] == 7
        assert snap["delay_ms"]["count"] == 4
        assert snap["delay_ms"]["mean"] == pytest.approx(2.5)
        assert snap["delay_ms"]["max"] == 4.0

    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")

    def test_negative_counter_increment_raises(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("x").inc(-1)

    def test_callback_gauge_polled_at_snapshot(self):
        registry = MetricsRegistry()
        state = {"value": 1}
        registry.gauge("live", fn=lambda: state["value"])
        assert registry.snapshot()["live"] == 1
        state["value"] = 9
        assert registry.snapshot()["live"] == 9

    def test_callback_gauge_rebinds(self):
        registry = MetricsRegistry()
        registry.gauge("live", fn=lambda: 1)
        registry.gauge("live", fn=lambda: 2)  # a fresh bind takes over
        assert registry.snapshot()["live"] == 2

    def test_callback_gauge_rejects_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live", fn=lambda: 1)
        with pytest.raises(ConfigurationError):
            gauge.set(5)

    def test_labeled_gauge_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge("backlog", label="as_id", fn=lambda: {"1": 3, "2": 0})
        assert registry.snapshot()["backlog"] == {"1": 3, "2": 0}

    def test_reset_zeroes_owned_values_only(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(5)
        registry.gauge("live", fn=lambda: 42)
        registry.histogram("h").observe(1.0)
        registry.reset()
        snap = registry.snapshot()
        assert snap["c"] == 0 and snap["g"] == 0
        assert snap["live"] == 42
        assert snap["h"]["count"] == 0

    def test_snapshot_deterministic_under_seeded_runs(self):
        """Two identical seeded runs produce identical registry snapshots."""

        def run():
            reset_perf_counters()
            topology = line_topology(5)
            scenario = don_scenario(periods=4, verify_signatures=True)
            scenario.at(minutes(25)).fail_link(topology.link_ids()[1])
            simulation = BeaconingSimulation(topology, scenario)
            registry = MetricsRegistry()
            bind_simulation(simulation, registry)
            simulation.run()
            return registry.snapshot()

        assert run() == run()


# ----------------------------------------------------------------------
# bounded queue-delay reservoir
# ----------------------------------------------------------------------

class TestQuantileReservoir:
    def test_exact_until_capacity(self):
        reservoir = QuantileReservoir(capacity=64)
        values = [float(i) for i in range(50)]
        for value in values:
            reservoir.observe(value)
        stats = reservoir.stats()
        assert stats["count"] == 50
        assert stats["mean"] == pytest.approx(sum(values) / 50)
        assert stats["max"] == 49.0
        ordered = sorted(values)
        assert stats["p50"] == ordered[int(0.50 * 50)]
        assert stats["p99"] == ordered[min(49, int(0.99 * 50))]

    def test_bounded_memory_and_quantile_tolerance_100k(self):
        """The satellite regression: 100k observations, fixed memory,
        p50/p99 within tolerance of the exact stream quantiles."""
        import random as random_module

        rng = random_module.Random(99)
        stream = [rng.expovariate(1.0 / 40.0) for _ in range(100_000)]
        reservoir = QuantileReservoir(capacity=4096, seed=0)
        for value in stream:
            reservoir.observe(value)
        assert reservoir.sample_size == 4096  # bounded, not 100k
        stats = reservoir.stats()
        assert stats["count"] == 100_000
        assert stats["mean"] == pytest.approx(sum(stream) / len(stream))
        assert stats["max"] == max(stream)
        ordered = sorted(stream)
        exact_p50 = ordered[int(0.50 * len(ordered))]
        exact_p99 = ordered[int(0.99 * len(ordered))]
        assert stats["p50"] == pytest.approx(exact_p50, rel=0.10)
        assert stats["p99"] == pytest.approx(exact_p99, rel=0.10)

    def test_deterministic_for_fixed_seed(self):
        def fill():
            reservoir = QuantileReservoir(capacity=16, seed=3)
            for index in range(1000):
                reservoir.observe(float(index % 97))
            return reservoir.stats()

        assert fill() == fill()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            QuantileReservoir(capacity=0)


class TestCollectorQueueDelays:
    def test_100k_delays_stay_bounded_with_stable_stats(self):
        collector = MetricsCollector()
        for index in range(100_000):
            collector.record_queue_delay(1, float(index % 500))
        assert collector._queue_delays.sample_size <= 4096
        stats = collector.queue_delay_stats()
        assert stats["count"] == 100_000
        assert stats["max"] == 499.0
        assert stats["mean"] == pytest.approx(249.5, rel=0.01)
        # The stream is uniform over [0, 500); the sampled percentiles
        # must land near the exact ones.
        assert stats["p50"] == pytest.approx(250.0, rel=0.10)
        assert stats["p99"] == pytest.approx(495.0, rel=0.05)

    def test_short_stream_is_bit_identical_to_unbounded_impl(self):
        """Below the reservoir capacity the stats match the original
        sort-everything implementation exactly (golden-trace safety)."""
        delays = [3.5, 1.0, 99.0, 42.0, 17.25, 0.5, 63.0]
        collector = MetricsCollector()
        for delay in delays:
            collector.record_queue_delay(1, delay)
        ordered = sorted(delays)
        count = len(ordered)
        expected = {
            "count": count,
            "mean": sum(ordered) / count,
            "max": ordered[-1],
            "p50": ordered[min(count - 1, int(0.50 * count))],
            "p99": ordered[min(count - 1, int(0.99 * count))],
        }
        assert collector.queue_delay_stats() == expected

    def test_reset_clears_reservoir(self):
        collector = MetricsCollector()
        collector.record_queue_delay(1, 5.0)
        collector.reset()
        assert collector.queue_delay_stats()["count"] == 0


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------

class TestSpans:
    def test_disabled_records_nothing(self):
        with spans.span("phase.a"):
            pass
        frame = spans.push("phase.b") if spans.ENABLED else None
        assert frame is None
        assert spans.snapshot() == {}

    def test_enabled_accumulates_calls_and_time(self):
        spans.enable()
        for _ in range(3):
            with spans.span("phase.a"):
                pass
        snap = spans.snapshot()
        assert snap["phase.a"]["calls"] == 3
        assert snap["phase.a"]["self_s"] >= 0.0
        assert snap["phase.a"]["total_s"] >= snap["phase.a"]["self_s"]

    def test_nesting_splits_self_and_total(self):
        spans.enable()
        with spans.span("outer"):
            with spans.span("inner"):
                pass
        snap = spans.snapshot()
        outer, inner = snap["outer"], snap["inner"]
        # The child's total is carved out of the parent's self time.
        assert outer["self_s"] == pytest.approx(
            outer["total_s"] - inner["total_s"], abs=1e-6
        )
        assert inner["self_s"] == pytest.approx(inner["total_s"])

    def test_add_credits_leaf_and_parent_child_time(self):
        spans.enable()
        with spans.span("outer"):
            spans.add("leaf", 0.25)
        snap = spans.snapshot()
        assert snap["leaf"] == {"calls": 1, "self_s": 0.25, "total_s": 0.25}
        # The leaf's 0.25s is carved out of the outer span's self time
        # (clamped at zero — the outer frame itself only ran for microseconds).
        assert snap["outer"]["self_s"] == 0.0
        assert snap["outer"]["self_s"] <= max(
            0.0, snap["outer"]["total_s"] - 0.25
        ) + 1e-6

    def test_reentrant_same_phase(self):
        spans.enable()

        def recurse(depth):
            with spans.span("recursive"):
                if depth:
                    recurse(depth - 1)

        recurse(3)
        snap = spans.snapshot()
        assert snap["recursive"]["calls"] == 4
        # Self times of nested same-name frames are disjoint: their sum
        # cannot exceed the outermost call's total.
        assert snap["recursive"]["self_s"] <= snap["recursive"]["total_s"] + 1e-9

    def test_exception_pops_frame(self):
        spans.enable()
        with pytest.raises(ValueError):
            with spans.span("exploding"):
                raise ValueError("boom")
        assert spans.snapshot()["exploding"]["calls"] == 1
        with spans.span("after"):
            pass
        assert spans.snapshot()["after"]["calls"] == 1

    def test_pop_survives_disable_between_push_and_pop(self):
        spans.enable()
        frame = spans.push("orphan")
        spans.disable()  # clears the stack
        spans.pop(frame)  # must not raise
        assert "orphan" not in spans.snapshot()

    def test_attribution_table_and_coverage(self):
        spans.enable()
        with spans.span("phase.a"):
            spans.add("phase.b", 0.1)
        spans.disable()
        snap = spans.snapshot()
        wall = 0.2
        table = spans.attribution_table(wall, stats=snap)
        assert "phase.a" in table and "phase.b" in table
        assert "coverage" in table and "(unattributed)" in table
        assert spans.coverage(wall, snap) >= 0.5  # phase.b alone is 0.1/0.2

    def test_zero_allocation_at_disabled_hot_seams(self):
        """With spans disabled, the instrumented crypto seam allocates
        nothing inside the spans module (the <2%-overhead guarantee)."""
        key = derive_key(1)
        message = b"x" * 64
        signature = key.sign(message)
        spans_file = spans.__file__
        tracemalloc.start()
        try:
            for _ in range(200):
                key.sign(message)
                key.verify(message, signature)
                with_frame = spans.ENABLED  # the hot-seam guard pattern
                assert not with_frame
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        from_spans = snapshot.filter_traces(
            (tracemalloc.Filter(True, spans_file),)
        )
        assert sum(stat.size for stat in from_spans.statistics("filename")) == 0
        assert spans.snapshot() == {}


# ----------------------------------------------------------------------
# bridge + exporters
# ----------------------------------------------------------------------

def _small_sim(periods=3, verify=True):
    topology = line_topology(5)
    scenario = don_scenario(periods=periods, verify_signatures=verify)
    return topology, scenario


class TestBridgeAndExporters:
    def test_bind_simulation_exposes_whole_system_state(self):
        topology, scenario = _small_sim()
        simulation = BeaconingSimulation(topology, scenario)
        registry = MetricsRegistry()
        bind_simulation(simulation, registry)
        simulation.run()
        snap = registry.snapshot()
        assert snap["sim.pcbs_sent_total"] == simulation.collector.total_sent > 0
        assert snap["sim.periods_run"] == 3
        assert snap["crypto.signature_verify_total"] > 0
        assert snap["scheduler.processed_events_total"] > 0
        assert set(snap["fabric.inbox_backlog"]) == {"1", "2", "3", "4", "5"}
        assert set(snap["fabric.queue_delay_ms"]) == {"count", "mean", "max", "p50", "p99"}

    def test_aggregation_counters_for_simultaneous_failures(self):
        """The carried-over ROADMAP follow-up: driver-side aggregation
        stats are recorded and visible through the registry."""
        topology = line_topology(5)
        scenario = don_scenario(periods=6, verify_signatures=False)
        links = topology.link_ids()
        # Two same-tick failures sharing AS 3: its origination batches
        # both elements into one multi-element RevocationMessage.
        scenario.at(minutes(25)).fail_link(links[1]).fail_link(links[2])
        simulation = BeaconingSimulation(topology, scenario)
        registry = MetricsRegistry()
        bind_simulation(simulation, registry)
        simulation.run()
        collector = simulation.collector
        assert collector.revocation_batches >= 2  # each endpoint originates
        assert collector.revocation_multi_batches >= 1  # AS 3 batched two
        assert collector.revocation_batch_max == 2
        assert collector.revocation_batch_elements > collector.revocation_batches
        snap = registry.snapshot()
        assert snap["sim.revocation_batches_total"] == collector.revocation_batches
        assert snap["sim.revocation_batch_elements_max"] == 2
        assert snap["sim.revocation_multi_batches_total"] == collector.revocation_multi_batches

    def test_single_failure_batches_are_single_element(self):
        topology = line_topology(5)
        scenario = don_scenario(periods=6, verify_signatures=False)
        scenario.at(minutes(25)).fail_link(topology.link_ids()[1])
        simulation = BeaconingSimulation(topology, scenario)
        simulation.run()
        collector = simulation.collector
        assert collector.revocation_batches == 2  # both endpoints
        assert collector.revocation_multi_batches == 0
        assert collector.revocation_batch_max == 1
        assert collector.revocation_batch_elements == 2

    def test_prometheus_text_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("msgs", help="messages sent").inc(41)
        registry.gauge("depth").set(7.5)
        registry.gauge("backlog", label="as_id", fn=lambda: {"1": 3, "2": 0})
        histogram = registry.histogram("delay_ms", help="queue delay")
        for value in (1.0, 5.0, 9.0):
            histogram.observe(value)
        text = prometheus_text(registry)
        assert "# TYPE repro_msgs counter" in text
        assert "# HELP repro_msgs messages sent" in text
        assert "# TYPE repro_delay_ms summary" in text
        assert 'repro_backlog{as_id="1"} 3' in text
        assert parse_prometheus_text(text) == registry_samples(registry)

    def test_prometheus_round_trip_after_real_run(self):
        topology, scenario = _small_sim()
        simulation = BeaconingSimulation(topology, scenario)
        registry = MetricsRegistry()
        bind_simulation(simulation, registry)
        simulation.run()
        text = prometheus_text(registry)
        assert parse_prometheus_text(text) == registry_samples(registry)

    def test_parse_rejects_malformed_line(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is { not a sample\n")


class TestTelemetrySampler:
    def test_one_sample_per_period_with_expected_keys(self):
        topology, scenario = _small_sim(periods=4)
        simulation = BeaconingSimulation(topology, scenario)
        sampler = TelemetrySampler(simulation).attach()
        simulation.run()
        assert len(sampler.samples) == 4
        for sample in sampler.samples:
            for key in (
                "pcbs_sent", "pcbs_per_s", "crypto_ops_per_s",
                "queue_delay_p50_ms", "queue_delay_p99_ms",
                "inbox_backlog_total", "inbox_backlog_max",
            ):
                assert key in sample.values
        assert sampler.samples[0].values["pcbs_sent"] > 0
        assert sampler.samples[0].values["pcbs_per_s"] > 0
        periods = [sample.period for sample in sampler.samples]
        assert periods == [0, 1, 2, 3]
        times = [sample.time_ms for sample in sampler.samples]
        assert times == sorted(times)

    def test_records_conform_to_result_logger_schema(self):
        topology, scenario = _small_sim(periods=2)
        simulation = BeaconingSimulation(topology, scenario)
        sampler = TelemetrySampler(simulation).attach()
        simulation.run()
        records = sampler.to_records(scenario="unit", scale="tiny", seed=5)
        assert len(records) == 2
        for record in records:
            validate_record(record)  # raises on schema violation
            assert record["scenario"] == "unit"
            assert record["metrics"]["pcbs_sent"] > 0

    def test_timeline_points(self):
        topology, scenario = _small_sim(periods=2)
        simulation = BeaconingSimulation(topology, scenario)
        sampler = TelemetrySampler(simulation).attach()
        simulation.run()
        points = sampler.timeline("pcbs_per_s")
        assert len(points) == 2
        assert all(value > 0 for _time, value in points)


# ----------------------------------------------------------------------
# golden-trace safety
# ----------------------------------------------------------------------

class TestTelemetryNeverChangesGoldenTrace:
    @settings(max_examples=4, deadline=None)
    @given(spans_on=st.booleans(), sampler_on=st.booleans())
    def test_golden_digest_invariant_under_telemetry(self, spans_on, sampler_on):
        """Any combination of observatory features leaves the pinned
        golden digest untouched — telemetry observes, never perturbs."""

        def instrument(simulation):
            registry = MetricsRegistry()
            bind_simulation(simulation, registry)
            if sampler_on:
                TelemetrySampler(simulation).attach()
            if spans_on:
                spans.reset()
                spans.enable()

        try:
            trace = run_scenario(instrument=instrument)
        finally:
            spans.disable()
            spans.reset()
        digest = hashlib.sha256(trace.encode("utf-8")).hexdigest()
        assert digest == GOLDEN_DIGEST
