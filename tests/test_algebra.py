"""Tests for the routing algebra: metrics, path vectors, dominance, isotonicity."""

import math

import pytest

from repro.core.algebra import (
    Accumulation,
    BANDWIDTH,
    HOP_COUNT,
    LATENCY,
    MetricDefinition,
    Objective,
    PathVector,
    RELIABILITY,
    is_isotone,
    lexicographic_compare,
    pareto_frontier,
)
from repro.exceptions import AlgebraError


class TestMetricDefinition:
    def test_identities(self):
        assert LATENCY.identity == 0.0
        assert BANDWIDTH.identity == math.inf
        assert RELIABILITY.identity == 1.0

    def test_combination(self):
        assert LATENCY.combine(10.0, 5.0) == 15.0
        assert BANDWIDTH.combine(100.0, 40.0) == 40.0
        assert RELIABILITY.combine(0.9, 0.5) == pytest.approx(0.45)

    def test_preference(self):
        assert LATENCY.prefers(5.0, 10.0)
        assert not LATENCY.prefers(10.0, 5.0)
        assert BANDWIDTH.prefers(100.0, 40.0)
        assert LATENCY.at_least_as_good(5.0, 5.0)

    def test_best(self):
        assert LATENCY.best([3.0, 1.0, 2.0]) == 1.0
        assert BANDWIDTH.best([3.0, 1.0, 2.0]) == 3.0
        with pytest.raises(AlgebraError):
            LATENCY.best([])

    def test_sort_key_orders_best_first(self):
        values = [5.0, 1.0, 3.0]
        assert sorted(values, key=LATENCY.sort_key()) == [1.0, 3.0, 5.0]
        assert sorted(values, key=BANDWIDTH.sort_key()) == [5.0, 3.0, 1.0]


class TestPathVector:
    def test_empty_vector_uses_identities(self):
        vector = PathVector.empty([LATENCY, BANDWIDTH])
        assert vector.value_of(LATENCY) == 0.0
        assert vector.value_of(BANDWIDTH) == math.inf

    def test_length_mismatch_rejected(self):
        with pytest.raises(AlgebraError):
            PathVector(metrics=(LATENCY,), values=(1.0, 2.0))

    def test_extension(self):
        vector = PathVector.empty([LATENCY, BANDWIDTH])
        extended = vector.extend({LATENCY: 10.0, BANDWIDTH: 100.0})
        extended = extended.extend({LATENCY: 5.0, BANDWIDTH: 50.0})
        assert extended.value_of(LATENCY) == 15.0
        assert extended.value_of(BANDWIDTH) == 50.0

    def test_extension_requires_all_metrics(self):
        vector = PathVector.empty([LATENCY, BANDWIDTH])
        with pytest.raises(AlgebraError):
            vector.extend({LATENCY: 10.0})

    def test_value_of_unknown_metric(self):
        vector = PathVector.empty([LATENCY])
        with pytest.raises(AlgebraError):
            vector.value_of(BANDWIDTH)

    def test_dominance(self):
        better = PathVector.of({LATENCY: 10.0, BANDWIDTH: 100.0})
        worse = PathVector.of({LATENCY: 20.0, BANDWIDTH: 50.0})
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_incomparability(self):
        low_latency = PathVector.of({LATENCY: 10.0, BANDWIDTH: 50.0})
        high_bandwidth = PathVector.of({LATENCY: 20.0, BANDWIDTH: 100.0})
        assert low_latency.incomparable_with(high_bandwidth)
        assert not low_latency.dominates(high_bandwidth)

    def test_equal_vectors_do_not_dominate(self):
        a = PathVector.of({LATENCY: 10.0})
        b = PathVector.of({LATENCY: 10.0})
        assert not a.dominates(b)
        assert not a.incomparable_with(b)

    def test_signature_mismatch(self):
        a = PathVector.of({LATENCY: 10.0})
        b = PathVector.of({BANDWIDTH: 10.0})
        with pytest.raises(AlgebraError):
            a.dominates(b)

    def test_as_dict(self):
        vector = PathVector.of({LATENCY: 10.0, BANDWIDTH: 100.0})
        assert vector.as_dict() == {"latency_ms": 10.0, "bandwidth_mbps": 100.0}


class TestParetoFrontier:
    def test_dominated_entries_removed(self):
        entries = [
            ("a", PathVector.of({LATENCY: 10.0, BANDWIDTH: 100.0})),
            ("b", PathVector.of({LATENCY: 20.0, BANDWIDTH: 50.0})),  # dominated by a
            ("c", PathVector.of({LATENCY: 5.0, BANDWIDTH: 20.0})),
        ]
        frontier = pareto_frontier(entries)
        labels = [label for label, _vector in frontier]
        assert labels == ["a", "c"]

    def test_all_incomparable_kept(self):
        entries = [
            ("a", PathVector.of({LATENCY: 10.0, BANDWIDTH: 10.0})),
            ("b", PathVector.of({LATENCY: 20.0, BANDWIDTH: 20.0})),
        ]
        assert len(pareto_frontier(entries)) == 2

    def test_empty_input(self):
        assert pareto_frontier([]) == []


class TestIsotonicity:
    def test_additive_metric_is_isotone(self):
        assert is_isotone(LATENCY, [10.0, 20.0, 30.0], [0.0, 5.0, 100.0])

    def test_bottleneck_metric_is_isotone(self):
        assert is_isotone(BANDWIDTH, [10.0, 20.0, 30.0], [5.0, 25.0, 100.0])

    def test_requires_two_path_values(self):
        with pytest.raises(AlgebraError):
            is_isotone(LATENCY, [1.0], [1.0])

    def test_custom_non_isotone_metric_detected(self):
        # A metric that keeps only the last hop value is not isotone.
        last_hop = MetricDefinition(
            name="last-hop", accumulation=Accumulation.BOTTLENECK, objective=Objective.MINIMIZE
        )
        # With bottleneck-minimize semantics, extending with a very small hop
        # value makes previously different paths equal -> still isotone;
        # verify the helper reports True here, and use it to document why the
        # Figure-4 situation needs *different* extension values per path.
        assert is_isotone(last_hop, [10.0, 20.0], [1.0])


class TestLexicographic:
    def test_first_metric_dominates(self):
        result = lexicographic_compare([BANDWIDTH, LATENCY], (100.0, 50.0), (50.0, 10.0))
        assert result == -1

    def test_tie_broken_by_second(self):
        result = lexicographic_compare([BANDWIDTH, LATENCY], (100.0, 50.0), (100.0, 10.0))
        assert result == 1

    def test_equality(self):
        assert lexicographic_compare([LATENCY], (5.0,), (5.0,)) == 0

    def test_size_mismatch(self):
        with pytest.raises(AlgebraError):
            lexicographic_compare([LATENCY], (1.0, 2.0), (1.0,))
