"""Tests for PCBs: construction, extension, metrics, signatures, expiry."""

import pytest

from repro.core.beacon import Beacon, BeaconBuilder, dedupe_beacons, beacons_per_origin
from repro.core.extensions import ExtensionSet
from repro.core.staticinfo import StaticInfo
from repro.crypto.signer import Signer, Verifier
from repro.exceptions import BeaconError, LoopError, SignatureError

from tests.conftest import make_beacon


class TestOrigination:
    def test_origin_beacon_shape(self, key_store):
        builder = BeaconBuilder(as_id=1, signer=Signer(as_id=1, key_store=key_store))
        beacon = builder.originate(egress_interface=2, created_at_ms=100.0)
        assert beacon.origin_as == 1
        assert beacon.hop_count == 1
        assert beacon.origin_interface == 2
        assert beacon.last_as == 1
        assert not beacon.is_terminated

    def test_origin_signature_verifies(self, key_store):
        builder = BeaconBuilder(as_id=1, signer=Signer(as_id=1, key_store=key_store))
        beacon = builder.originate(egress_interface=2, created_at_ms=0.0)
        beacon.verify(Verifier(key_store=key_store))


class TestExtension:
    def test_extension_appends_hop(self, key_store):
        beacon = make_beacon(key_store, [(1, None, 1), (2, 1, 2), (3, 1, 2)])
        assert beacon.as_path() == (1, 2, 3)
        assert beacon.hop_count == 3
        assert beacon.last_as == 3

    def test_loop_rejected(self, key_store, beacon_factory):
        beacon = beacon_factory([(1, None, 1), (2, 1, 2)])
        builder = BeaconBuilder(as_id=1, signer=Signer(as_id=1, key_store=key_store))
        with pytest.raises(LoopError):
            builder.extend(beacon, ingress_interface=3, egress_interface=4)

    def test_terminated_beacon_cannot_be_extended(self, key_store, beacon_factory):
        beacon = beacon_factory([(1, None, 1), (2, 1, None)])
        assert beacon.is_terminated
        builder = BeaconBuilder(as_id=3, signer=Signer(as_id=3, key_store=key_store))
        with pytest.raises(BeaconError):
            builder.extend(beacon, ingress_interface=1, egress_interface=2)

    def test_signature_chain_verifies_after_extension(self, key_store, beacon_factory):
        beacon = beacon_factory([(1, None, 1), (2, 1, 2), (3, 2, None)])
        beacon.verify(Verifier(key_store=key_store))

    def test_tampering_breaks_verification(self, key_store, beacon_factory):
        import dataclasses

        beacon = beacon_factory([(1, None, 1), (2, 1, 2)])
        tampered_entry = dataclasses.replace(beacon.entries[0], egress_interface=9)
        tampered = dataclasses.replace(beacon, entries=(tampered_entry, beacon.entries[1]))
        with pytest.raises(SignatureError):
            tampered.verify(Verifier(key_store=key_store))


class TestMetrics:
    def test_latency_accumulates_links_and_intra(self, key_store):
        beacon = make_beacon(
            key_store,
            [(1, None, 1), (2, 1, 2), (3, 1, None)],
            link_latencies=[10.0, 20.0, 0.0],
            intra_latencies=[0.0, 5.0, 0.0],
        )
        assert beacon.total_latency_ms() == pytest.approx(35.0)

    def test_bottleneck_bandwidth(self, key_store):
        beacon = make_beacon(
            key_store,
            [(1, None, 1), (2, 1, 2), (3, 1, 2)],
            link_bandwidths=[1000.0, 200.0, 800.0],
        )
        assert beacon.bottleneck_bandwidth_mbps() == 200.0

    def test_bandwidth_of_terminal_only_origin(self, key_store):
        builder = BeaconBuilder(as_id=1, signer=Signer(as_id=1, key_store=key_store))
        beacon = builder.originate(
            egress_interface=1, created_at_ms=0.0, static_info=StaticInfo()
        )
        assert beacon.bottleneck_bandwidth_mbps() == float("inf")

    def test_links_between_consecutive_entries(self, key_store):
        beacon = make_beacon(key_store, [(1, None, 7), (2, 3, 5), (3, 9, None)])
        assert beacon.links() == (((1, 7), (2, 3)), ((2, 5), (3, 9)))

    def test_interfaces_listing(self, key_store):
        beacon = make_beacon(key_store, [(1, None, 7), (2, 3, 5)])
        assert (1, 7) in beacon.interfaces()
        assert (2, 3) in beacon.interfaces()
        assert (2, 5) in beacon.interfaces()


class TestLifetimeAndEncoding:
    def test_expiry(self, key_store):
        beacon = make_beacon(key_store, [(1, None, 1)], validity_ms=1000.0)
        assert not beacon.is_expired(500.0)
        assert beacon.is_expired(1000.0)
        assert beacon.expires_at_ms() == 1000.0

    def test_digest_changes_with_content(self, key_store, beacon_factory):
        a = beacon_factory([(1, None, 1), (2, 1, 2)])
        b = beacon_factory([(1, None, 1), (2, 1, 3)])
        assert a.digest() != b.digest()

    def test_encode_is_deterministic(self, key_store, beacon_factory):
        beacon = beacon_factory([(1, None, 1), (2, 1, 2)])
        assert beacon.encode() == beacon.encode()

    def test_contains_as(self, key_store, beacon_factory):
        beacon = beacon_factory([(1, None, 1), (2, 1, 2)])
        assert beacon.contains_as(1)
        assert beacon.contains_as(2)
        assert not beacon.contains_as(3)

    def test_empty_beacon_rejected_by_last_entry(self):
        beacon = Beacon(origin_as=1, created_at_ms=0.0, entries=())
        with pytest.raises(BeaconError):
            _ = beacon.last_entry
        with pytest.raises(BeaconError):
            beacon.verify(Verifier.__new__(Verifier))  # never reaches the verifier


class TestExtensionsOnBeacons:
    def test_target_and_algorithm_accessors(self, key_store):
        extensions = ExtensionSet().with_target(9).with_algorithm("algo", "ff" * 32)
        beacon = make_beacon(key_store, [(1, None, 1)], extensions=extensions)
        assert beacon.target_as == 9
        assert beacon.algorithm_id == "algo"
        assert beacon.interface_group_id is None

    def test_interface_group_accessor(self, key_store):
        extensions = ExtensionSet().with_interface_group(3)
        beacon = make_beacon(key_store, [(1, None, 1)], extensions=extensions)
        assert beacon.interface_group_id == 3

    def test_extensions_covered_by_signature(self, key_store):
        import dataclasses

        extensions = ExtensionSet().with_target(9)
        beacon = make_beacon(key_store, [(1, None, 1)], extensions=extensions)
        stripped = dataclasses.replace(beacon, extensions=ExtensionSet())
        with pytest.raises(SignatureError):
            stripped.verify(Verifier(key_store=key_store))


class TestHelpers:
    def test_dedupe_beacons(self, key_store, beacon_factory):
        a = beacon_factory([(1, None, 1), (2, 1, 2)])
        b = beacon_factory([(1, None, 1), (3, 1, 2)])
        assert dedupe_beacons([a, a, b, a]) == [a, b]

    def test_beacons_per_origin(self, key_store, beacon_factory):
        a = beacon_factory([(1, None, 1), (2, 1, 2)])
        b = beacon_factory([(5, None, 1), (2, 1, 2)])
        grouped = beacons_per_origin([a, b])
        assert set(grouped) == {1, 5}
