"""Tests for the ingress and egress gateways."""

import pytest

from repro.core.beacon import BeaconBuilder
from repro.core.databases import EgressDatabase, IngressDatabase, PathService, StoredBeacon
from repro.core.egress import EgressGateway
from repro.core.extensions import ExtensionSet
from repro.core.ingress import IngressGateway
from repro.core.local_view import LocalTopologyView
from repro.core.rac import RACSelection
from repro.core.transport import NullTransport
from repro.crypto.keys import KeyStore
from repro.crypto.signer import Signer, Verifier
from repro.exceptions import PolicyViolationError

from tests.conftest import figure1_topology, make_beacon


@pytest.fixture
def topology():
    return figure1_topology()


def view_for(topology, as_id, key_store=None):
    return LocalTopologyView.from_topology(topology, as_id)


def gateway_pair(topology, as_id, key_store):
    """Return (ingress gateway, egress gateway, transport) of one AS."""
    view = view_for(topology, as_id)
    transport = NullTransport()
    ingress = IngressGateway(
        as_id=as_id, verifier=Verifier(key_store=key_store), database=IngressDatabase()
    )
    egress = EgressGateway(
        view=view,
        builder=BeaconBuilder(as_id=as_id, signer=Signer(as_id=as_id, key_store=key_store)),
        transport=transport,
        database=EgressDatabase(),
        path_service=PathService(),
    )
    return ingress, egress, transport


class TestIngressGateway:
    def test_accepts_valid_beacon(self, topology, key_store):
        ingress, _egress, _transport = gateway_pair(topology, 3, key_store)
        beacon = make_beacon(key_store, [(1, None, 1), (2, 1, 2)])
        assert ingress.receive(beacon, on_interface=1, now_ms=0.0)
        assert ingress.stats.accepted == 1
        assert len(ingress.database) == 1

    def test_duplicate_counted(self, topology, key_store):
        ingress, _egress, _transport = gateway_pair(topology, 3, key_store)
        beacon = make_beacon(key_store, [(1, None, 1), (2, 1, 2)])
        ingress.receive(beacon, on_interface=1, now_ms=0.0)
        assert not ingress.receive(beacon, on_interface=1, now_ms=0.0)
        assert ingress.stats.duplicates == 1

    def test_rejects_expired(self, topology, key_store):
        ingress, _egress, _transport = gateway_pair(topology, 3, key_store)
        beacon = make_beacon(key_store, [(1, None, 1), (2, 1, 2)], validity_ms=10.0)
        assert not ingress.receive(beacon, on_interface=1, now_ms=100.0)
        assert ingress.stats.rejected_expired == 1

    def test_rejects_invalid_signature(self, topology, key_store):
        foreign_store = KeyStore(deployment_secret=b"other-deployment")
        ingress, _egress, _transport = gateway_pair(topology, 3, key_store)
        forged = make_beacon(foreign_store, [(1, None, 1), (2, 1, 2)])
        assert not ingress.receive(forged, on_interface=1, now_ms=0.0)
        assert ingress.stats.rejected_signature == 1

    def test_signature_verification_can_be_disabled(self, topology, key_store):
        foreign_store = KeyStore(deployment_secret=b"other-deployment")
        ingress, _egress, _transport = gateway_pair(topology, 3, key_store)
        ingress.verify_signatures = False
        forged = make_beacon(foreign_store, [(1, None, 1), (2, 1, 2)])
        assert ingress.receive(forged, on_interface=1, now_ms=0.0)

    def test_rejects_looping_beacon(self, topology, key_store):
        ingress, _egress, _transport = gateway_pair(topology, 3, key_store)
        looping = make_beacon(key_store, [(1, None, 1), (3, 1, 2)])
        assert not ingress.receive(looping, on_interface=1, now_ms=0.0)
        assert ingress.stats.rejected_policy == 1

    def test_pull_beacon_at_target_accepted_despite_containing_local_as(self, topology, key_store):
        # A pull beacon whose target is the local AS never actually contains
        # the local AS until terminated, but the policy exception must not
        # reject it if the local AS appears as target.
        ingress, _egress, _transport = gateway_pair(topology, 3, key_store)
        pull = make_beacon(
            key_store,
            [(1, None, 1), (2, 1, 2)],
            extensions=ExtensionSet().with_target(3),
        )
        assert ingress.receive(pull, on_interface=1, now_ms=0.0)

    def test_rejects_terminated_beacon(self, topology, key_store):
        ingress, _egress, _transport = gateway_pair(topology, 3, key_store)
        terminated = make_beacon(key_store, [(1, None, 1), (2, 1, None)])
        assert not ingress.receive(terminated, on_interface=1, now_ms=0.0)

    def test_custom_policy_applied(self, topology, key_store):
        ingress, _egress, _transport = gateway_pair(topology, 3, key_store)

        def reject_origin_one(beacon, _local_as):
            if beacon.origin_as == 1:
                raise PolicyViolationError("origin 1 is blocked")

        ingress.policies.append(reject_origin_one)
        blocked = make_beacon(key_store, [(1, None, 1), (2, 1, 2)])
        allowed = make_beacon(key_store, [(5, None, 2), (2, 1, 2)])
        assert not ingress.receive(blocked, on_interface=1, now_ms=0.0)
        assert ingress.receive(allowed, on_interface=1, now_ms=0.0)

    def test_expire_delegates_to_database(self, topology, key_store):
        ingress, _egress, _transport = gateway_pair(topology, 3, key_store)
        beacon = make_beacon(key_store, [(1, None, 1), (2, 1, 2)], validity_ms=10.0)
        ingress.receive(beacon, on_interface=1, now_ms=0.0)
        assert ingress.expire(now_ms=100.0) == 1


class TestEgressGateway:
    def _selection(self, key_store, beacon, egress_interfaces, received_on=1, tag="1sp"):
        stored = StoredBeacon(beacon=beacon, received_on_interface=received_on, received_at_ms=0.0)
        return RACSelection(stored=stored, egress_interfaces=list(egress_interfaces), criteria_tag=tag)

    def test_origination_sends_one_beacon_per_interface(self, topology, key_store):
        _ingress, egress, transport = gateway_pair(topology, 1, key_store)
        originated = egress.originate(now_ms=0.0)
        assert len(originated) == 2  # AS 1 has two interfaces in Figure 1
        assert len(transport.sent) == 2
        assert egress.stats.originated == 2
        for beacon in originated:
            assert beacon.origin_as == 1
            assert beacon.entries[0].static_info.link_bandwidth_mbps is not None

    def test_origination_on_selected_interfaces_with_extensions(self, topology, key_store):
        _ingress, egress, transport = gateway_pair(topology, 1, key_store)
        extensions = ExtensionSet().with_target(3)
        originated = egress.originate(now_ms=0.0, interfaces=[2], extensions=extensions)
        assert len(originated) == 1
        assert originated[0].target_as == 3
        assert transport.sent[0][1] == 2

    def test_propagation_extends_and_sends(self, topology, key_store):
        # AS 3 received a beacon from AS 2 on interface 1 and propagates it.
        _ingress, egress, transport = gateway_pair(topology, 3, key_store)
        beacon = make_beacon(key_store, [(1, None, 1), (2, 1, 2)])
        selection = self._selection(key_store, beacon, egress_interfaces=[2, 3], received_on=1)
        sent = egress.propagate([selection])
        assert sent == 2
        for _sender, interface, extended in transport.sent:
            assert extended.last_as == 3
            assert extended.hop_count == 3
            assert extended.entries[-1].ingress_interface == 1
            assert extended.entries[-1].egress_interface in (2, 3)

    def test_propagation_skips_neighbors_already_on_path(self, topology, key_store):
        # AS 3's interface 1 leads back to AS 2, which is on the path.
        _ingress, egress, transport = gateway_pair(topology, 3, key_store)
        beacon = make_beacon(key_store, [(1, None, 1), (2, 1, 2)])
        selection = self._selection(key_store, beacon, egress_interfaces=[1], received_on=1)
        assert egress.propagate([selection]) == 0
        assert egress.stats.suppressed_loops == 1

    def test_propagation_deduplicates_across_racs(self, topology, key_store):
        _ingress, egress, transport = gateway_pair(topology, 3, key_store)
        beacon = make_beacon(key_store, [(1, None, 1), (2, 1, 2)])
        first = self._selection(key_store, beacon, egress_interfaces=[2], tag="1sp")
        second = self._selection(key_store, beacon, egress_interfaces=[2, 3], tag="don")
        sent = egress.propagate([first, second])
        # Interface 2 only once; interface 3 newly added by the second RAC.
        assert sent == 2
        assert egress.stats.propagated == 2

    def test_pull_beacon_at_target_returned_to_origin(self, topology, key_store):
        _ingress, egress, transport = gateway_pair(topology, 3, key_store)
        pull = make_beacon(
            key_store,
            [(1, None, 1), (2, 1, 2)],
            extensions=ExtensionSet().with_target(3),
        )
        selection = self._selection(key_store, pull, egress_interfaces=[2], received_on=1)
        sent = egress.propagate([selection])
        assert sent == 0
        assert len(transport.returned) == 1
        _sender, returned = transport.returned[0]
        assert returned.is_terminated
        assert returned.origin_as == 1
        # Returning twice is suppressed.
        egress.propagate([selection])
        assert len(transport.returned) == 1
        assert egress.stats.suppressed_duplicates == 1

    def test_registration_terminates_and_tags(self, topology, key_store):
        _ingress, egress, _transport = gateway_pair(topology, 3, key_store)
        beacon = make_beacon(key_store, [(1, None, 1), (2, 1, 2)])
        selection = self._selection(key_store, beacon, egress_interfaces=[2], tag="don")
        registered = egress.register([selection], now_ms=5.0)
        assert registered == 1
        paths = egress.path_service.paths_to(1)
        assert len(paths) == 1
        assert paths[0].criteria_tags == ("don",)
        assert paths[0].segment.is_terminated
        assert paths[0].segment.last_as == 3

    def test_registration_skips_own_origin(self, topology, key_store):
        _ingress, egress, _transport = gateway_pair(topology, 3, key_store)
        own = make_beacon(key_store, [(3, None, 2)])
        selection = self._selection(key_store, own, egress_interfaces=[2])
        assert egress.register([selection], now_ms=0.0) == 0

    def test_expire(self, topology, key_store):
        _ingress, egress, _transport = gateway_pair(topology, 3, key_store)
        beacon = make_beacon(key_store, [(1, None, 1), (2, 1, 2)], validity_ms=10.0)
        selection = self._selection(key_store, beacon, egress_interfaces=[2])
        egress.propagate([selection])
        egress.register([selection], now_ms=0.0)
        removed_egress, removed_paths = egress.expire(now_ms=1_000.0)
        assert removed_egress == 1
        assert removed_paths == 1
