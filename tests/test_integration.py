"""Integration tests spanning control plane, data plane and simulation.

These tests reproduce, at small scale, the qualitative results of the
paper: multi-criteria optimization (Figures 1 and 2), interface groups and
extended paths (Figures 3 and 4), on-demand + pull-based routing used
together (P4), backward compatibility with legacy SCION ASes (§VII-B), and
the TLF ordering of Figure 8b.
"""

import pytest

from repro.algorithms.bandwidth import LatencyBoundedWidestAlgorithm, WidestPathAlgorithm
from repro.algorithms.registry import encode_criteria_payload
from repro.algorithms.shortest_path import KShortestPathAlgorithm
from repro.core.criteria import lowest_latency, shortest_widest, widest_with_latency_bound
from repro.dataplane.endhost import EndHost, PathSelectionPreference
from repro.dataplane.network import DataPlaneNetwork
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import (
    AlgorithmSpec,
    ScenarioConfig,
    disjointness_scenario,
    one_shortest_path_spec,
)
from repro.analysis.disjointness_eval import evaluate_disjointness
from repro.topology.generator import generate_topology, small_test_config

from tests.conftest import figure1_topology, line_topology


def figure1_scenario(periods=4):
    """1SP + widest + latency-bounded widest, the Figure-1 application mix."""
    return ScenarioConfig(
        algorithms=(
            one_shortest_path_spec(),
            AlgorithmSpec(
                rac_id="widest",
                factory=lambda: WidestPathAlgorithm(paths_per_interface=2),
                use_interface_groups=False,
            ),
            AlgorithmSpec(
                rac_id="live-video",
                factory=lambda: LatencyBoundedWidestAlgorithm(
                    latency_bound_ms=30.0, paths_per_interface=2
                ),
                use_interface_groups=False,
            ),
        ),
        periods=periods,
        verify_signatures=True,
    )


class TestFigure1MultiCriteria:
    """Example #1 and #2 of the paper: three applications, three different paths."""

    @pytest.fixture(scope="class")
    def result(self):
        return BeaconingSimulation(figure1_topology(), figure1_scenario()).run()

    def test_voip_gets_the_low_latency_path(self, result):
        host = EndHost(host_id="voip", as_id=1, path_service=result.service(1).path_service)
        selected = host.select_paths(3, PathSelectionPreference(lowest_latency()), limit=1)
        assert selected
        assert selected[0].segment.total_latency_ms() == pytest.approx(20.0, abs=0.5)

    def test_file_transfer_gets_the_wide_path(self, result):
        host = EndHost(host_id="ft", as_id=1, path_service=result.service(1).path_service)
        selected = host.select_paths(3, PathSelectionPreference(shortest_widest()), limit=1)
        assert selected
        assert selected[0].segment.bottleneck_bandwidth_mbps() == pytest.approx(10_000.0)
        assert selected[0].segment.total_latency_ms() == pytest.approx(40.0, abs=0.5)

    def test_live_video_gets_the_bounded_path(self, result):
        host = EndHost(host_id="video", as_id=1, path_service=result.service(1).path_service)
        preference = PathSelectionPreference(widest_with_latency_bound(30.5))
        selected = host.select_paths(3, preference, limit=1)
        assert selected
        segment = selected[0].segment
        assert segment.total_latency_ms() <= 30.5
        assert segment.bottleneck_bandwidth_mbps() == pytest.approx(1_000.0)

    def test_discovered_paths_are_forwardable(self, result):
        """Control-plane paths actually work on the data plane (usability)."""
        topology = result.topology
        network = DataPlaneNetwork(topology=topology)
        host = EndHost(host_id="h", as_id=1, path_service=result.service(1).path_service)
        for preference in (
            PathSelectionPreference(lowest_latency()),
            PathSelectionPreference(shortest_widest()),
        ):
            packet = host.build_packet(3, preference)
            report = network.deliver(packet)
            assert report.delivered, report.failure_reason
            # The latency the data plane measures matches the control-plane
            # prediction within the intra-AS modelling error.
            assert report.latency_ms == pytest.approx(
                packet.path.expected_latency_ms, rel=0.1, abs=1.0
            )


class TestOnDemandSourceCriteria:
    """P4: a source AS expresses its criteria via on-demand + pull-based routing."""

    def test_source_receives_paths_optimized_for_its_criterion(self, key_store):
        topology = figure1_topology()
        scenario = ScenarioConfig(
            algorithms=(
                one_shortest_path_spec(),
                AlgorithmSpec(rac_id="on-demand", on_demand=True),
            ),
            periods=5,
            verify_signatures=True,
        )
        simulation = BeaconingSimulation(topology, scenario)
        source = simulation.services[1]
        payload = encode_criteria_payload(shortest_widest(), paths_per_interface=2)
        source.publish_algorithm("shortest-widest", payload)
        source.originate_pull(target_as=3, now_ms=0.0, algorithm_id="shortest-widest")
        simulation.run()
        returned = source.pull_results_for("shortest-widest")
        assert returned
        best_bandwidth = max(b.bottleneck_bandwidth_mbps() for b, _t in returned)
        assert best_bandwidth == pytest.approx(10_000.0)


class TestBackwardCompatibility:
    """§VII-B: IREC ASes interoperate with legacy SCION ASes."""

    def test_mixed_deployment_keeps_connectivity(self):
        topology = generate_topology(small_test_config())
        legacy = tuple(topology.as_ids()[::3])  # every third AS runs legacy SCION
        scenario = ScenarioConfig(
            algorithms=(one_shortest_path_spec(),),
            periods=3,
            verify_signatures=False,
            legacy_ases=legacy,
        )
        result = BeaconingSimulation(topology, scenario).run()
        # Every AS (legacy or IREC) ends up with paths to at least half of
        # the other ASes, i.e. connectivity is not interrupted.
        as_ids = topology.as_ids()
        for as_id in as_ids:
            service = result.service(as_id)
            reachable = {
                path.segment.origin_as for path in service.path_service.all_paths()
            }
            assert len(reachable) >= (len(as_ids) - 1) // 2

    def test_pure_irec_and_mixed_reach_the_same_origins(self):
        topology = generate_topology(small_test_config())
        pure = BeaconingSimulation(
            topology,
            ScenarioConfig(
                algorithms=(one_shortest_path_spec(),), periods=3, verify_signatures=False
            ),
        ).run()
        mixed = BeaconingSimulation(
            generate_topology(small_test_config()),
            ScenarioConfig(
                algorithms=(one_shortest_path_spec(),),
                periods=3,
                verify_signatures=False,
                legacy_ases=(topology.as_ids()[1],),
            ),
        ).run()
        probe = topology.as_ids()[-1]
        pure_origins = {p.segment.origin_as for p in pure.service(probe).path_service.all_paths()}
        mixed_origins = {p.segment.origin_as for p in mixed.service(probe).path_service.all_paths()}
        assert pure_origins == mixed_origins


class TestDisjointnessOrdering:
    """Figure 8b's qualitative ordering: 1SP <= 5SP <= HD on tolerable link failures."""

    def test_tlf_ordering_holds_on_generated_topology(self):
        topology = generate_topology(small_test_config())
        result = BeaconingSimulation(
            topology, disjointness_scenario(periods=3, verify_signatures=False)
        ).run()
        as_ids = topology.as_ids()
        pairs = [(as_ids[-1], as_ids[0]), (as_ids[-2], as_ids[0]), (as_ids[-3], as_ids[1])]
        evaluation = evaluate_disjointness(result, tags=["1sp", "5sp", "hd"], as_pairs=pairs)
        for index in range(len(pairs)):
            one = evaluation.tlf["1sp"][index]
            five = evaluation.tlf["5sp"][index]
            assert one <= five
        # HD achieves at least the mean disjointness of 5SP across the pairs.
        assert sum(evaluation.tlf["hd"]) >= sum(evaluation.tlf["1sp"])


class TestInterfaceGroupGranularity:
    """Figure 3: finer interface groups expose more distinct paths per origin."""

    def test_finer_groups_register_more_paths(self):
        from repro.simulation.scenario import dob_scenario

        topology = generate_topology(small_test_config())
        fine = BeaconingSimulation(
            topology, dob_scenario(radius_km=300.0, periods=3)
        ).run()
        coarse = BeaconingSimulation(
            generate_topology(small_test_config()), dob_scenario(radius_km=20_000.0, periods=3)
        ).run()
        probe = topology.as_ids()[-1]
        fine_paths = len(fine.service(probe).path_service.all_paths())
        coarse_paths = len(coarse.service(probe).path_service.all_paths())
        assert fine_paths >= coarse_paths

    def test_finer_groups_send_at_least_as_many_pcbs(self):
        from repro.simulation.scenario import dob_scenario

        fine = BeaconingSimulation(
            generate_topology(small_test_config()), dob_scenario(radius_km=300.0, periods=2)
        ).run()
        coarse = BeaconingSimulation(
            generate_topology(small_test_config()), dob_scenario(radius_km=20_000.0, periods=2)
        ).run()
        assert fine.collector.total_sent >= coarse.collector.total_sent
