"""Tests for the §IX bootstrapping extension and for link-failure injection."""

import random

import pytest

from repro.algorithms.shortest_path import KShortestPathAlgorithm
from repro.core.bootstrap import (
    BootstrapReport,
    NeighborPathCache,
    RapidPropagationRAC,
    bootstrap_paths,
    summarize_bootstrap,
)
from repro.core.control_service import IrecControlService
from repro.core.databases import StoredBeacon
from repro.core.local_view import LocalTopologyView
from repro.core.transport import LoopbackTransport
from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.failures import LinkFailureInjector, minimum_failures_to_disconnect
from repro.simulation.scenario import disjointness_scenario, don_scenario
from repro.topology.generator import generate_topology, small_test_config

from tests.conftest import line_topology, make_beacon


class TestRapidPropagationRAC:
    def _stored(self, key_store, origin=1, egress=1):
        beacon = make_beacon(key_store, [(origin, None, egress), (2, 1, 2)])
        return StoredBeacon(beacon=beacon, received_on_interface=1, received_at_ms=0.0)

    def test_first_beacon_per_origin_is_forwarded(self, key_store):
        rac = RapidPropagationRAC(rate_limit_ms=1000.0)
        selections = rac.on_beacon_arrival(self._stored(key_store), (3, 4), now_ms=0.0)
        assert len(selections) == 1
        assert selections[0].egress_interfaces == [3, 4]
        assert selections[0].criteria_tag == "rapid"
        assert rac.forwarded == 1

    def test_rate_limit_per_origin(self, key_store):
        rac = RapidPropagationRAC(rate_limit_ms=1000.0)
        rac.on_beacon_arrival(self._stored(key_store, origin=1), (3,), now_ms=0.0)
        suppressed = rac.on_beacon_arrival(self._stored(key_store, origin=1, egress=2), (3,), now_ms=100.0)
        other_origin = rac.on_beacon_arrival(self._stored(key_store, origin=5), (3,), now_ms=100.0)
        after_interval = rac.on_beacon_arrival(self._stored(key_store, origin=1, egress=3), (3,), now_ms=2000.0)
        assert suppressed == []
        assert len(other_origin) == 1
        assert len(after_interval) == 1
        assert rac.suppressed == 1

    def test_reset(self, key_store):
        rac = RapidPropagationRAC(rate_limit_ms=1000.0)
        rac.on_beacon_arrival(self._stored(key_store), (3,), now_ms=0.0)
        rac.reset()
        assert rac.forwarded == 0
        assert len(rac.on_beacon_arrival(self._stored(key_store), (3,), now_ms=1.0)) == 1

    def test_rapid_forward_reaches_neighbor(self, key_store):
        """A rapid-forwarded beacon is immediately propagated to the next AS."""
        topology = line_topology(3)
        transport = LoopbackTransport(topology=topology)
        services = {}
        for as_info in topology:
            view = LocalTopologyView.from_topology(topology, as_info.as_id)
            service = IrecControlService(view=view, key_store=key_store, transport=transport)
            service.add_static_rac(rac_id="1sp", algorithm=KShortestPathAlgorithm(k=1))
            services[as_info.as_id] = service
            transport.register(service)

        services[1].originate(now_ms=0.0)
        # AS 2 rapid-forwards whatever just arrived without waiting for the
        # periodic round.
        rapid = RapidPropagationRAC(rate_limit_ms=0.0)
        arrivals = services[2].ingress.database.all_beacons()
        assert arrivals
        selections = []
        for stored in arrivals:
            selections.extend(
                rapid.on_beacon_arrival(stored, services[2].view.interface_ids(), now_ms=1.0)
            )
        sent = services[2].egress.propagate(selections)
        assert sent >= 1
        assert len(services[3].ingress.database) >= 1


class TestBootstrapPaths:
    def _deployment(self, key_store):
        topology = line_topology(4)
        scenario = don_scenario(periods=4, verify_signatures=False)
        result = BeaconingSimulation(topology, scenario).run()
        return topology, result

    def test_join_via_direct_neighbors(self, key_store):
        topology, result = self._deployment(key_store)
        joining = result.service(4)
        neighbor = result.service(3)
        collected = bootstrap_paths(
            joining_service=joining,
            neighbor_caches=[NeighborPathCache(service=neighbor)],
            wanted_origins=[1, 2, 4],
        )
        # Paths to origins 1 and 2 come straight from the neighbour's path
        # service; the joining AS itself is excluded.
        assert collected[1]
        assert collected[2]
        assert 4 not in collected
        report = summarize_bootstrap(collected)
        assert isinstance(report, BootstrapReport)
        assert report.origins_resolved == 2
        assert report.coverage == 1.0

    def test_recursion_through_second_level(self, key_store):
        topology, result = self._deployment(key_store)
        joining = result.service(4)
        # The direct neighbour (AS 3) pretends to know nothing by using an
        # empty control service; the second-level neighbour (AS 2) answers.
        empty_view = LocalTopologyView.from_topology(topology, 3)
        empty_service = IrecControlService(
            view=empty_view, key_store=key_store, transport=LoopbackTransport(topology=topology)
        )
        second_level = {3: [NeighborPathCache(service=result.service(2))]}
        collected = bootstrap_paths(
            joining_service=joining,
            neighbor_caches=[NeighborPathCache(service=empty_service)],
            wanted_origins=[1],
            max_depth=2,
            cache_resolver=lambda as_id: second_level.get(as_id, []),
        )
        assert collected[1]

    def test_depth_validation(self, key_store):
        _topology, result = self._deployment(key_store)
        with pytest.raises(ConfigurationError):
            bootstrap_paths(
                joining_service=result.service(4),
                neighbor_caches=[],
                wanted_origins=[1],
                max_depth=0,
            )

    def test_limit_per_origin(self, key_store):
        _topology, result = self._deployment(key_store)
        joining = result.service(4)
        neighbor = result.service(3)
        collected = bootstrap_paths(
            joining_service=joining,
            neighbor_caches=[NeighborPathCache(service=neighbor)],
            wanted_origins=[1],
            limit_per_origin=1,
        )
        assert len(collected[1]) == 1


class TestLinkFailureInjection:
    @pytest.fixture(scope="class")
    def disjoint_run(self):
        topology = generate_topology(small_test_config())
        scenario = disjointness_scenario(periods=3, verify_signatures=False)
        return BeaconingSimulation(topology, scenario).run()

    def test_fail_unknown_link_rejected(self, disjoint_run):
        injector = LinkFailureInjector(topology=disjoint_run.topology)
        with pytest.raises(SimulationError):
            injector.fail_link(((999, 1), (998, 1)))
        with pytest.raises(SimulationError):
            injector.fail_random_links(-1)

    def test_random_failures_and_restore(self, disjoint_run):
        injector = LinkFailureInjector(topology=disjoint_run.topology)
        failed = injector.fail_random_links(3, rng=random.Random(1))
        assert len(failed) == 3
        assert injector.failed_links == set(failed)
        injector.restore_all()
        assert injector.failed_links == set()

    def test_surviving_paths_filtering(self, disjoint_run):
        topology = disjoint_run.topology
        as_ids = topology.as_ids()
        source, destination = as_ids[-1], as_ids[0]
        segments = [
            p.segment
            for p in disjoint_run.service(source).path_service.paths_to(destination)
        ]
        assert segments
        injector = LinkFailureInjector(topology=topology)
        # Fail the first link of the first path: that path must disappear
        # from the surviving set.
        victim_link = segments[0].links()[0]
        injector.fail_link(victim_link)
        surviving = injector.surviving_paths(segments)
        assert segments[0] not in surviving
        assert all(victim_link not in s.links() for s in surviving)

    def test_tlf_prediction_matches_failure_injection(self, disjoint_run):
        """Removing fewer links than the TLF never disconnects the pair."""
        topology = disjoint_run.topology
        as_ids = topology.as_ids()
        source, destination = as_ids[-1], as_ids[0]
        segments = [
            p.segment
            for p in disjoint_run.service(source).path_service.paths_to(destination)
            if "hd" in p.criteria_tags or "5sp" in p.criteria_tags
        ]
        assert segments
        tlf = minimum_failures_to_disconnect(segments, source, destination)
        assert tlf >= 1
        rng = random.Random(3)
        used_links = sorted({link for s in segments for link in s.links()})
        for _trial in range(5):
            injector = LinkFailureInjector(topology=topology)
            sample = rng.sample(used_links, k=min(tlf - 1, len(used_links))) if tlf > 1 else []
            for link in sample:
                injector.fail_link(link)
            assert injector.pair_still_connected(segments)
