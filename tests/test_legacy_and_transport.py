"""Tests for the legacy SCION control service and the transport implementations."""

import pytest

from repro.core.databases import StoredBeacon
from repro.core.local_view import LocalTopologyView
from repro.core.transport import LoopbackTransport, NullTransport
from repro.exceptions import SimulationError, UnknownASError, UnknownAlgorithmError
from repro.scion.legacy import LegacyControlService

from tests.conftest import line_topology, make_beacon


def legacy_deployment(topology, key_store, paths_per_origin=20):
    transport = LoopbackTransport(topology=topology)
    services = {}
    for as_info in topology:
        view = LocalTopologyView.from_topology(topology, as_info.as_id)
        service = LegacyControlService(
            view=view,
            key_store=key_store,
            transport=transport,
            paths_per_origin=paths_per_origin,
        )
        services[as_info.as_id] = service
        transport.register(service)
    return services, transport


class TestLegacyControlService:
    def test_beaconing_end_to_end(self, key_store):
        topology = line_topology(4)
        services, _transport = legacy_deployment(topology, key_store)
        for round_index in range(4):
            now = round_index * 1000.0
            for service in services.values():
                service.originate(now_ms=now)
            for service in services.values():
                service.run_round(now_ms=now + 500.0)
        paths = services[4].path_service.paths_to(1)
        assert paths
        assert paths[0].criteria_tags == ("legacy",)
        assert paths[0].segment.as_path() == (1, 2, 3, 4)

    def test_select_paths_limits_to_configured_count(self, key_store):
        topology = line_topology(3)
        services, _transport = legacy_deployment(topology, key_store, paths_per_origin=2)
        service = services[2]
        stored = [
            StoredBeacon(
                beacon=make_beacon(key_store, [(1, None, interface), (9 + interface, 1, 2)]),
                received_on_interface=1,
                received_at_ms=0.0,
            )
            for interface in range(1, 6)
        ]
        selected, report = service.select_paths(stored)
        assert len(selected) == 2
        assert report.candidates == 5
        assert report.selections == 2
        assert report.execution_ms > 0.0
        assert report.throughput_pcbs_per_second() > 0.0

    def test_select_paths_empty(self, key_store):
        topology = line_topology(3)
        services, _transport = legacy_deployment(topology, key_store)
        selected, report = services[2].select_paths([])
        assert selected == []
        assert report.total_ms == 0.0

    def test_no_on_demand_support(self, key_store):
        topology = line_topology(3)
        services, _transport = legacy_deployment(topology, key_store)
        with pytest.raises(UnknownAlgorithmError):
            services[1].serve_algorithm("anything")
        # Returned beacons are silently dropped.
        beacon = make_beacon(key_store, [(1, None, 2), (2, 1, None)])
        services[1].receive_returned_beacon(beacon, now_ms=0.0)

    def test_propagation_does_not_resend_same_interface(self, key_store):
        topology = line_topology(3)
        services, transport = legacy_deployment(topology, key_store)
        for service in services.values():
            service.originate(now_ms=0.0)
        before = transport.sent_count
        services[2].run_round(now_ms=1.0)
        first_round = transport.sent_count - before
        services[2].run_round(now_ms=2.0)
        second_round = transport.sent_count - before - first_round
        assert first_round > 0
        assert second_round == 0  # nothing new to propagate


class TestNullTransport:
    def test_records_messages(self, key_store):
        transport = NullTransport()
        beacon = make_beacon(key_store, [(1, None, 1)])
        transport.send_beacon(1, 1, beacon)
        transport.return_beacon_to_origin(2, beacon)
        assert len(transport.sent) == 1
        assert len(transport.returned) == 1

    def test_fetch_from_configured_table(self):
        transport = NullTransport(payloads={(1, "a"): b"payload"})
        assert transport.fetch_algorithm(9, 1, "a") == b"payload"
        with pytest.raises(SimulationError):
            transport.fetch_algorithm(9, 1, "missing")


class TestLoopbackTransport:
    def test_unknown_destination_raises(self, key_store):
        topology = line_topology(2)
        transport = LoopbackTransport(topology=topology)
        beacon = make_beacon(key_store, [(1, None, 2)])
        with pytest.raises(UnknownASError):
            transport.send_beacon(1, 2, beacon)

    def test_unknown_origin_for_return(self, key_store):
        topology = line_topology(2)
        transport = LoopbackTransport(topology=topology)
        terminated = make_beacon(key_store, [(1, None, 2), (2, 1, None)])
        with pytest.raises(UnknownASError):
            transport.return_beacon_to_origin(2, terminated)

    def test_fetch_algorithm_requires_registered_service(self):
        topology = line_topology(2)
        transport = LoopbackTransport(topology=topology)
        with pytest.raises(UnknownASError):
            transport.fetch_algorithm(2, 1, "algo")
