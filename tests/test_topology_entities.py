"""Tests for topology entities: ASes, interfaces and links."""

import pytest

from repro.exceptions import TopologyError, UnknownInterfaceError
from repro.topology.entities import (
    ASInfo,
    Interface,
    Link,
    Relationship,
    normalize_link_id,
)
from repro.topology.geo import GeoCoordinate

LOC = GeoCoordinate(47.0, 8.0)


def make_interface(as_id, interface_id, location=LOC):
    return Interface(as_id=as_id, interface_id=interface_id, location=location)


class TestInterface:
    def test_key(self):
        assert make_interface(3, 7).key == (3, 7)


class TestLink:
    def test_valid_link(self):
        link = Link((1, 1), (2, 1), 10.0, 100.0, Relationship.PEER)
        assert link.as_pair == (1, 2)

    def test_same_as_rejected(self):
        with pytest.raises(TopologyError):
            Link((1, 1), (1, 2), 10.0, 100.0, Relationship.PEER)

    def test_negative_latency_rejected(self):
        with pytest.raises(TopologyError):
            Link((1, 1), (2, 1), -1.0, 100.0, Relationship.PEER)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(TopologyError):
            Link((1, 1), (2, 1), 1.0, 0.0, Relationship.PEER)

    def test_other_end(self):
        link = Link((1, 1), (2, 1), 10.0, 100.0, Relationship.PEER)
        assert link.other_end((1, 1)) == (2, 1)
        assert link.other_end((2, 1)) == (1, 1)
        with pytest.raises(TopologyError):
            link.other_end((3, 1))

    def test_endpoint_of(self):
        link = Link((1, 1), (2, 1), 10.0, 100.0, Relationship.PEER)
        assert link.endpoint_of(2) == (2, 1)
        with pytest.raises(TopologyError):
            link.endpoint_of(5)

    def test_customer_provider_direction(self):
        # Interface A belongs to the customer, interface B to the provider.
        link = Link((1, 1), (2, 1), 10.0, 100.0, Relationship.CUSTOMER_PROVIDER)
        assert link.is_provider_of(1)  # AS 2 is the provider of AS 1
        assert link.is_customer_of(2)  # AS 1 is the customer of AS 2
        assert not link.is_provider_of(2)
        assert not link.is_customer_of(1)

    def test_peer_link_has_no_provider(self):
        link = Link((1, 1), (2, 1), 10.0, 100.0, Relationship.PEER)
        assert not link.is_provider_of(1)
        assert not link.is_customer_of(2)

    def test_key_is_normalised(self):
        link = Link((2, 1), (1, 1), 10.0, 100.0, Relationship.PEER)
        assert link.key == normalize_link_id((1, 1), (2, 1))


class TestNormalizeLinkId:
    def test_order_independence(self):
        assert normalize_link_id((1, 2), (3, 4)) == normalize_link_id((3, 4), (1, 2))

    def test_ordering_by_tuple(self):
        assert normalize_link_id((3, 4), (1, 2)) == ((1, 2), (3, 4))


class TestASInfo:
    def test_add_and_lookup_interface(self):
        info = ASInfo(as_id=1)
        info.add_interface(make_interface(1, 5))
        assert info.interface(5).interface_id == 5
        assert info.interface_ids() == (5,)
        assert info.degree == 1

    def test_foreign_interface_rejected(self):
        info = ASInfo(as_id=1)
        with pytest.raises(TopologyError):
            info.add_interface(make_interface(2, 1))

    def test_duplicate_interface_rejected(self):
        info = ASInfo(as_id=1)
        info.add_interface(make_interface(1, 1))
        with pytest.raises(TopologyError):
            info.add_interface(make_interface(1, 1))

    def test_missing_interface_raises(self):
        info = ASInfo(as_id=1)
        with pytest.raises(UnknownInterfaceError):
            info.interface(42)

    def test_iteration_in_identifier_order(self):
        info = ASInfo(as_id=1)
        info.add_interface(make_interface(1, 3))
        info.add_interface(make_interface(1, 1))
        assert [i.interface_id for i in info] == [1, 3]
        assert len(info) == 2
