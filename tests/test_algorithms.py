"""Tests for the routing algorithms executed inside RACs."""

import pytest

from repro.algorithms.bandwidth import (
    LatencyBoundedWidestAlgorithm,
    ShortestWidestAlgorithm,
    WidestPathAlgorithm,
)
from repro.algorithms.base import CandidateBeacon, ExecutionContext, ExecutionResult
from repro.algorithms.criteria_algorithm import CriteriaSetAlgorithm
from repro.algorithms.delay import DelayOptimizationAlgorithm
from repro.algorithms.disjointness import HeuristicDisjointnessAlgorithm
from repro.algorithms.pareto import ParetoDominantAlgorithm
from repro.algorithms.pull_disjoint import LinkAvoidingAlgorithm, freeze_links
from repro.algorithms.shortest_path import (
    LEGACY_PATH_COUNT,
    KShortestPathAlgorithm,
    legacy_scion_algorithm,
)
from repro.core.criteria import widest_with_latency_bound
from repro.exceptions import AlgorithmError

from tests.conftest import make_beacon

LOCAL_AS = 100


def zero_intra(_a: int, _b: int) -> float:
    return 0.0


def make_context(candidates, egress_interfaces=(1,), limit=20, intra=zero_intra, parameters=None):
    return ExecutionContext(
        local_as=LOCAL_AS,
        candidates=tuple(candidates),
        egress_interfaces=tuple(egress_interfaces),
        max_paths_per_interface=limit,
        intra_latency_ms=intra,
        parameters=parameters or {},
    )


@pytest.fixture
def candidate_set(key_store):
    """Five candidates from origin 1 with varied lengths, delays, bandwidths."""
    specs = [
        # (hops, latencies, bandwidths)
        ([(1, None, 1), (2, 1, 2)], [10.0, 10.0], [100.0, 100.0]),
        ([(1, None, 1), (3, 1, 2)], [5.0, 5.0], [500.0, 500.0]),
        ([(1, None, 1), (4, 1, 2), (5, 1, 2)], [5.0, 5.0, 5.0], [10_000.0, 10_000.0, 10_000.0]),
        ([(1, None, 1), (6, 1, 2), (7, 1, 2)], [20.0, 20.0, 20.0], [1_000.0, 1_000.0, 1_000.0]),
        ([(1, None, 2), (8, 1, 2), (9, 1, 2), (10, 1, 2)], [2.0] * 4, [2_000.0] * 4),
    ]
    candidates = []
    for hops, latencies, bandwidths in specs:
        beacon = make_beacon(key_store, hops, link_latencies=latencies, link_bandwidths=bandwidths)
        candidates.append(CandidateBeacon(beacon=beacon, ingress_interface=1))
    return candidates


class TestExecutionResult:
    def test_add_and_query(self, candidate_set):
        result = ExecutionResult()
        result.add(1, candidate_set[0].beacon)
        result.add(1, candidate_set[1].beacon)
        result.add(2, candidate_set[0].beacon)
        assert len(result.beacons_for(1)) == 2
        assert result.total_selected() == 3

    def test_enforce_limit(self, candidate_set):
        result = ExecutionResult()
        for candidate in candidate_set:
            result.add(1, candidate.beacon)
        result.enforce_limit(2)
        assert len(result.beacons_for(1)) == 2
        with pytest.raises(AlgorithmError):
            result.enforce_limit(-1)


class TestKShortestPath:
    def test_invalid_k(self):
        with pytest.raises(AlgorithmError):
            KShortestPathAlgorithm(k=0)

    def test_one_shortest(self, candidate_set):
        result = KShortestPathAlgorithm(k=1).execute(make_context(candidate_set))
        selected = result.beacons_for(1)
        assert len(selected) == 1
        assert selected[0].hop_count == 2
        # Tie on hop count broken by latency: the 10 ms two-hop path.
        assert selected[0].total_latency_ms() == pytest.approx(10.0)

    def test_k_larger_than_candidates(self, candidate_set):
        result = KShortestPathAlgorithm(k=50).execute(make_context(candidate_set))
        assert len(result.beacons_for(1)) == len(candidate_set)

    def test_rac_limit_caps_k(self, candidate_set):
        result = KShortestPathAlgorithm(k=5).execute(make_context(candidate_set, limit=2))
        assert len(result.beacons_for(1)) == 2

    def test_same_selection_on_every_interface(self, candidate_set):
        result = KShortestPathAlgorithm(k=2).execute(
            make_context(candidate_set, egress_interfaces=(1, 2, 3))
        )
        digests = {
            interface: [b.digest() for b in result.beacons_for(interface)]
            for interface in (1, 2, 3)
        }
        assert digests[1] == digests[2] == digests[3]

    def test_loop_candidates_excluded(self, key_store, candidate_set):
        looping = CandidateBeacon(
            beacon=make_beacon(key_store, [(1, None, 1), (LOCAL_AS, 1, 2)]),
            ingress_interface=1,
        )
        result = KShortestPathAlgorithm(k=10).execute(make_context(candidate_set + [looping]))
        digests = {b.digest() for b in result.beacons_for(1)}
        assert looping.beacon.digest() not in digests

    def test_legacy_algorithm_selects_twenty(self):
        assert legacy_scion_algorithm().k == LEGACY_PATH_COUNT

    def test_determinism(self, candidate_set):
        a = KShortestPathAlgorithm(k=3).execute(make_context(candidate_set))
        b = KShortestPathAlgorithm(k=3).execute(make_context(list(reversed(candidate_set))))
        assert [x.digest() for x in a.beacons_for(1)] == [x.digest() for x in b.beacons_for(1)]


class TestDelayOptimization:
    def test_invalid_config(self):
        with pytest.raises(AlgorithmError):
            DelayOptimizationAlgorithm(paths_per_interface=0)

    def test_don_picks_lowest_received_latency(self, candidate_set):
        result = DelayOptimizationAlgorithm(paths_per_interface=1).execute(
            make_context(candidate_set)
        )
        selected = result.beacons_for(1)[0]
        assert selected.total_latency_ms() == pytest.approx(8.0)

    def test_dob_uses_intra_latency(self, key_store):
        """Figure 4: extension with intra-AS latency flips the decision."""
        received_close = CandidateBeacon(
            beacon=make_beacon(key_store, [(1, None, 1), (2, 1, 2)], link_latencies=[35.0, 35.0]),
            ingress_interface=1,
        )
        received_far = CandidateBeacon(
            beacon=make_beacon(key_store, [(1, None, 1), (3, 1, 2)], link_latencies=[34.0, 34.0]),
            ingress_interface=2,
        )

        def intra(a: int, b: int) -> float:
            # Interface 2 is far from egress interface 3; interface 1 is close.
            table = {(1, 3): 1.0, (2, 3): 10.0}
            return table.get((a, b), table.get((b, a), 0.0))

        don = DelayOptimizationAlgorithm(paths_per_interface=1, use_extended_paths=False)
        dob = DelayOptimizationAlgorithm(paths_per_interface=1, use_extended_paths=True)
        context = make_context([received_close, received_far], egress_interfaces=(3,), intra=intra)
        assert don.execute(context).beacons_for(3)[0].digest() == received_far.beacon.digest()
        assert dob.execute(context).beacons_for(3)[0].digest() == received_close.beacon.digest()

    def test_names_reflect_variant(self):
        assert DelayOptimizationAlgorithm(use_extended_paths=False).name == "don"
        assert DelayOptimizationAlgorithm(use_extended_paths=True).name == "dob"


class TestBandwidthAlgorithms:
    def test_widest(self, candidate_set):
        result = WidestPathAlgorithm().execute(make_context(candidate_set))
        assert result.beacons_for(1)[0].bottleneck_bandwidth_mbps() == 10_000.0

    def test_shortest_widest_tie_break(self, key_store):
        wide_long = CandidateBeacon(
            beacon=make_beacon(
                key_store,
                [(1, None, 1), (2, 1, 2), (3, 1, 2)],
                link_latencies=[30.0, 30.0, 30.0],
                link_bandwidths=[1000.0] * 3,
            ),
            ingress_interface=1,
        )
        wide_short = CandidateBeacon(
            beacon=make_beacon(
                key_store,
                [(1, None, 1), (4, 1, 2)],
                link_latencies=[10.0, 10.0],
                link_bandwidths=[1000.0, 1000.0],
            ),
            ingress_interface=1,
        )
        result = ShortestWidestAlgorithm().execute(make_context([wide_long, wide_short]))
        assert result.beacons_for(1)[0].digest() == wide_short.beacon.digest()

    def test_latency_bounded_widest(self, candidate_set):
        algorithm = LatencyBoundedWidestAlgorithm(latency_bound_ms=30.0)
        result = algorithm.execute(make_context(candidate_set))
        selected = result.beacons_for(1)[0]
        assert selected.total_latency_ms() <= 30.0
        # The 15 ms / 10 Gbit path qualifies and is the widest within bound.
        assert selected.bottleneck_bandwidth_mbps() == 10_000.0

    def test_latency_bound_excludes_everything(self, candidate_set):
        algorithm = LatencyBoundedWidestAlgorithm(latency_bound_ms=1.0)
        result = algorithm.execute(make_context(candidate_set))
        assert result.beacons_for(1) == []

    def test_invalid_parameters(self):
        with pytest.raises(AlgorithmError):
            WidestPathAlgorithm(paths_per_interface=0)
        with pytest.raises(AlgorithmError):
            LatencyBoundedWidestAlgorithm(latency_bound_ms=-5.0)


class TestHeuristicDisjointness:
    def test_selects_disjoint_paths(self, key_store):
        shared_prefix_a = make_beacon(
            key_store, [(1, None, 1), (2, 1, 2), (3, 1, 2)]
        )
        shared_prefix_b = make_beacon(
            key_store, [(1, None, 1), (2, 1, 3), (4, 1, 2)]
        )
        disjoint = make_beacon(key_store, [(1, None, 2), (5, 1, 2), (6, 1, 2)])
        candidates = [
            CandidateBeacon(beacon=b, ingress_interface=1)
            for b in (shared_prefix_a, shared_prefix_b, disjoint)
        ]
        algorithm = HeuristicDisjointnessAlgorithm(paths_per_interface=2, remember_propagations=False)
        result = algorithm.execute(make_context(candidates))
        selected = result.beacons_for(1)
        assert len(selected) == 2
        # The first two picks must be the two link-disjoint alternatives.
        digests = {b.digest() for b in selected}
        assert disjoint.digest() in digests

    def test_memory_suppresses_repeat_propagation(self, candidate_set):
        algorithm = HeuristicDisjointnessAlgorithm(paths_per_interface=2)
        first = algorithm.execute(make_context(candidate_set))
        second = algorithm.execute(make_context(candidate_set))
        assert first.total_selected() > 0
        # Already-propagated beacons are not selected again; later rounds
        # pick different (previously unserved) beacons instead.
        first_digests = {b.digest() for b in first.beacons_for(1)}
        second_digests = {b.digest() for b in second.beacons_for(1)}
        assert first_digests.isdisjoint(second_digests)
        # Once every candidate has been served, selection dries up entirely.
        for _ in range(len(candidate_set)):
            algorithm.execute(make_context(candidate_set))
        exhausted = algorithm.execute(make_context(candidate_set))
        assert exhausted.total_selected() == 0
        algorithm.reset_memory()
        refreshed = algorithm.execute(make_context(candidate_set))
        assert refreshed.total_selected() == first.total_selected()

    def test_invalid_config(self):
        with pytest.raises(AlgorithmError):
            HeuristicDisjointnessAlgorithm(paths_per_interface=0)


class TestLinkAvoiding:
    def test_avoids_configured_links(self, key_store):
        through_forbidden = make_beacon(key_store, [(1, None, 7), (2, 3, 5)])
        clean = make_beacon(key_store, [(1, None, 8), (3, 4, 5)])
        forbidden_link = (((1, 7), (2, 3)),)
        algorithm = LinkAvoidingAlgorithm(avoid_links=freeze_links(forbidden_link))
        candidates = [
            CandidateBeacon(beacon=b, ingress_interface=1) for b in (through_forbidden, clean)
        ]
        result = algorithm.execute(make_context(candidates))
        selected = result.beacons_for(1)
        assert len(selected) == 1
        assert selected[0].digest() == clean.digest()

    def test_avoid_links_from_parameters(self, key_store):
        through_forbidden = make_beacon(key_store, [(1, None, 7), (2, 3, 5)])
        candidates = [CandidateBeacon(beacon=through_forbidden, ingress_interface=1)]
        algorithm = LinkAvoidingAlgorithm()
        context = make_context(candidates, parameters={"avoid_links": [((1, 7), (2, 3))]})
        assert algorithm.execute(context).beacons_for(1) == []

    def test_empty_avoid_set_selects_shortest(self, candidate_set):
        result = LinkAvoidingAlgorithm(paths_per_interface=1).execute(make_context(candidate_set))
        assert len(result.beacons_for(1)) == 1


class TestCriteriaSetAlgorithm:
    def test_wraps_declarative_criteria(self, candidate_set):
        algorithm = CriteriaSetAlgorithm(
            criteria_set=widest_with_latency_bound(30.0), paths_per_interface=1
        )
        result = algorithm.execute(make_context(candidate_set))
        selected = result.beacons_for(1)[0]
        assert selected.total_latency_ms() <= 30.0

    def test_best_beacon_helper(self, candidate_set):
        algorithm = CriteriaSetAlgorithm(criteria_set=widest_with_latency_bound(30.0))
        best = algorithm.best_beacon(make_context(candidate_set))
        assert best is not None
        assert best.total_latency_ms() <= 30.0

    def test_invalid_paths_per_interface(self):
        with pytest.raises(AlgorithmError):
            CriteriaSetAlgorithm(criteria_set=widest_with_latency_bound(30.0), paths_per_interface=0)


class TestParetoDominant:
    def test_keeps_all_dominant_paths(self, candidate_set):
        algorithm = ParetoDominantAlgorithm()
        result = algorithm.execute(make_context(candidate_set))
        selected = result.beacons_for(1)
        # The low-latency and the high-bandwidth paths are incomparable and
        # must both survive.
        latencies = sorted(b.total_latency_ms() for b in selected)
        bandwidths = sorted(b.bottleneck_bandwidth_mbps() for b in selected)
        assert latencies[0] == pytest.approx(8.0)
        assert bandwidths[-1] == 10_000.0

    def test_pareto_set_is_larger_than_single_criterion(self, candidate_set):
        pareto = ParetoDominantAlgorithm().execute(make_context(candidate_set))
        single = KShortestPathAlgorithm(k=1).execute(make_context(candidate_set))
        assert pareto.total_selected() > single.total_selected()

    def test_invalid_metrics(self):
        with pytest.raises(AlgorithmError):
            ParetoDominantAlgorithm(metrics=())
