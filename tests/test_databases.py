"""Tests for the ingress database, egress database and path service."""

import pytest

from repro.core.databases import (
    EgressDatabase,
    IngressDatabase,
    PathService,
    RegisteredPath,
    StoredBeacon,
)
from repro.core.extensions import ExtensionSet
from repro.exceptions import GatewayError

from tests.conftest import make_beacon


def stored(beacon, interface=1, at_ms=0.0):
    return StoredBeacon(beacon=beacon, received_on_interface=interface, received_at_ms=at_ms)


class TestIngressDatabase:
    def test_insert_and_duplicate(self, key_store, beacon_factory):
        database = IngressDatabase()
        beacon = beacon_factory([(1, None, 1), (2, 1, 2)])
        assert database.insert(stored(beacon))
        assert not database.insert(stored(beacon))
        assert len(database) == 1
        assert beacon.digest() in database

    def test_bucketing_by_origin_group_target_algorithm(self, key_store, beacon_factory):
        database = IngressDatabase()
        plain = beacon_factory([(1, None, 1), (2, 1, 2)])
        grouped = beacon_factory(
            [(1, None, 1), (3, 1, 2)], extensions=ExtensionSet().with_interface_group(2)
        )
        pulled = beacon_factory(
            [(4, None, 1), (2, 1, 2)], extensions=ExtensionSet().with_target(9)
        )
        on_demand = beacon_factory(
            [(4, None, 1), (3, 1, 2)],
            extensions=ExtensionSet().with_algorithm("algo", "hash"),
        )
        for beacon in (plain, grouped, pulled, on_demand):
            database.insert(stored(beacon))
        buckets = database.bucket_keys()
        assert (1, None, None, None) in buckets
        assert (1, 2, None, None) in buckets
        assert (4, None, 9, None) in buckets
        assert (4, None, None, "algo") in buckets
        assert len(database.beacons_in_bucket((1, None, None, None))) == 1

    def test_get_by_digest(self, key_store, beacon_factory):
        database = IngressDatabase()
        beacon = beacon_factory([(1, None, 1), (2, 1, 2)])
        database.insert(stored(beacon, interface=5))
        fetched = database.get(beacon.digest())
        assert fetched is not None
        assert fetched.received_on_interface == 5
        assert database.get("missing") is None

    def test_expiry(self, key_store):
        database = IngressDatabase()
        short = make_beacon(key_store, [(1, None, 1), (2, 1, 2)], validity_ms=100.0)
        lasting = make_beacon(key_store, [(3, None, 1), (2, 1, 2)], validity_ms=10_000.0)
        database.insert(stored(short))
        database.insert(stored(lasting))
        removed = database.remove_expired(now_ms=500.0)
        assert removed == 1
        assert len(database) == 1
        assert database.get(lasting.digest()) is not None

    def test_expiry_margin(self, key_store):
        database = IngressDatabase(expiry_margin_ms=1000.0)
        soon = make_beacon(key_store, [(1, None, 1), (2, 1, 2)], validity_ms=500.0)
        database.insert(stored(soon))
        # Not expired yet, but within the soon-to-expire margin.
        assert database.remove_expired(now_ms=0.0) == 1

    def test_all_beacons(self, key_store, beacon_factory):
        database = IngressDatabase()
        a = beacon_factory([(1, None, 1), (2, 1, 2)])
        b = beacon_factory([(3, None, 1), (2, 1, 2)])
        database.insert(stored(a))
        database.insert(stored(b))
        assert len(database.all_beacons()) == 2


class TestEgressDatabase:
    def test_filter_new_interfaces(self):
        database = EgressDatabase()
        fresh = database.filter_new_interfaces("digest", [1, 2, 3], expires_at_ms=100.0)
        assert fresh == [1, 2, 3]
        again = database.filter_new_interfaces("digest", [2, 3, 4], expires_at_ms=100.0)
        assert again == [4]
        assert database.interfaces_for("digest") == {1, 2, 3, 4}

    def test_unknown_digest_has_no_interfaces(self):
        assert EgressDatabase().interfaces_for("nope") == set()

    def test_expiry(self):
        database = EgressDatabase()
        database.filter_new_interfaces("a", [1], expires_at_ms=100.0)
        database.filter_new_interfaces("b", [1], expires_at_ms=10_000.0)
        assert database.remove_expired(now_ms=500.0) == 1
        assert "a" not in database
        assert "b" in database

    def test_len(self):
        database = EgressDatabase()
        database.filter_new_interfaces("a", [1], expires_at_ms=1.0)
        assert len(database) == 1


class TestPathService:
    def _registered(self, key_store, origin=1, tags=("1sp",), via=2):
        segment = make_beacon(key_store, [(origin, None, 1), (via, 1, None)])
        return RegisteredPath(segment=segment, criteria_tags=tags, registered_at_ms=0.0)

    def test_only_terminated_segments_accepted(self, key_store, beacon_factory):
        not_terminated = beacon_factory([(1, None, 1), (2, 1, 2)])
        with pytest.raises(GatewayError):
            RegisteredPath(segment=not_terminated, criteria_tags=("x",), registered_at_ms=0.0)

    def test_register_and_query(self, key_store):
        service = PathService()
        path = self._registered(key_store)
        assert service.register(path)
        assert len(service.paths_to(1)) == 1
        assert len(service.paths_with_tag("1sp")) == 1
        assert service.paths_to(99) == []

    def test_duplicate_registration_merges_tags(self, key_store):
        service = PathService()
        segment = make_beacon(key_store, [(1, None, 1), (2, 1, None)])
        service.register(RegisteredPath(segment=segment, criteria_tags=("1sp",), registered_at_ms=0.0))
        service.register(RegisteredPath(segment=segment, criteria_tags=("don",), registered_at_ms=1.0))
        assert len(service) == 1
        assert set(service.paths_to(1)[0].criteria_tags) == {"1sp", "don"}

    def test_reregistration_refreshes_last_registered_timestamp(self, key_store):
        service = PathService()
        segment = make_beacon(key_store, [(1, None, 1), (2, 1, None)])
        service.register(RegisteredPath(segment=segment, criteria_tags=("1sp",), registered_at_ms=0.0))
        assert service.latest_registration_ms(1) == pytest.approx(0.0)
        service.register(RegisteredPath(segment=segment, criteria_tags=("1sp",), registered_at_ms=7.0))
        merged = service.paths_to(1)[0]
        # First-registration time is stable; the merge refreshes staleness.
        assert merged.registered_at_ms == pytest.approx(0.0)
        assert merged.last_registered_at_ms == pytest.approx(7.0)
        assert service.latest_registration_ms(1) == pytest.approx(7.0)
        assert service.latest_registration_ms(99) is None
        assert service.get(segment.digest()) is merged
        assert service.get("missing") is None

    def test_quota_per_tag_origin_group(self, key_store):
        service = PathService(max_paths_per_key=2)
        accepted = 0
        for via in range(2, 7):
            path = self._registered(key_store, via=via)
            if service.register(path):
                accepted += 1
        assert accepted == 2

    def test_quota_is_per_tag(self, key_store):
        service = PathService(max_paths_per_key=1)
        assert service.register(self._registered(key_store, via=2, tags=("1sp",)))
        # A different criteria tag has its own quota.
        assert service.register(self._registered(key_store, via=3, tags=("don",)))
        # Same tag again: rejected.
        assert not service.register(self._registered(key_store, via=4, tags=("1sp",)))

    def test_expiry(self, key_store):
        service = PathService()
        segment = make_beacon(key_store, [(1, None, 1), (2, 1, None)], validity_ms=100.0)
        service.register(
            RegisteredPath(segment=segment, criteria_tags=("x",), registered_at_ms=0.0)
        )
        assert service.remove_expired(now_ms=1_000.0) == 1
        assert len(service) == 0

    def test_removal_releases_quota_for_reregistration(self, key_store):
        service = PathService(max_paths_per_key=1)
        assert service.register(self._registered(key_store, via=2))
        assert not service.register(self._registered(key_store, via=3))
        # Withdrawing the registered path frees its quota slot again.
        assert service.remove_matching(lambda path: True) == 1
        assert service.register(self._registered(key_store, via=3))

    def test_removal_releases_only_consumed_quota(self, key_store):
        service = PathService(max_paths_per_key=1)
        # Path X fills the "a" quota; path Y is stored via its "b" tag only
        # (the "a" key is already full, so Y consumes no "a" slot).
        assert service.register(self._registered(key_store, via=2, tags=("a",)))
        assert service.register(self._registered(key_store, via=3, tags=("a", "b")))
        # Removing Y must release only "b": the "a" quota is still held by
        # X, so another "a"-tagged path stays rejected.
        assert service.remove_matching(lambda path: "b" in path.criteria_tags) == 1
        assert not service.register(self._registered(key_store, via=4, tags=("a",)))
        # Removing X finally frees "a".
        assert service.remove_matching(lambda path: True) == 1
        assert service.register(self._registered(key_store, via=4, tags=("a",)))


class TestUnifiedExpiryMargins:
    """Satellite regression (PR 4): all three per-AS stores honour one
    expiry horizon, so a beacon never survives in one store after being
    dropped from another."""

    def test_all_stores_drop_within_the_same_margin(self, key_store):
        margin = 1_000.0
        beacon = make_beacon(key_store, [(1, None, 1), (2, 1, 2)], validity_ms=500.0)
        segment = make_beacon(key_store, [(1, None, 1), (2, 1, None)], validity_ms=500.0)
        ingress = IngressDatabase(expiry_margin_ms=margin)
        egress = EgressDatabase(expiry_margin_ms=margin)
        paths = PathService(expiry_margin_ms=margin)
        ingress.insert(stored(beacon))
        egress.filter_new_interfaces(beacon.digest(), [1], expires_at_ms=beacon.expires_at_ms())
        paths.register(
            RegisteredPath(segment=segment, criteria_tags=("x",), registered_at_ms=0.0)
        )
        # now=0: none of the entries is expired, but all expire within the
        # margin — every store must drop them together.
        assert ingress.remove_expired(now_ms=0.0) == 1
        assert egress.remove_expired(now_ms=0.0) == 1
        assert paths.remove_expired(now_ms=0.0) == 1

    def test_all_stores_keep_entries_outside_the_margin(self, key_store):
        margin = 100.0
        beacon = make_beacon(key_store, [(1, None, 1), (2, 1, 2)], validity_ms=5_000.0)
        segment = make_beacon(key_store, [(1, None, 1), (2, 1, None)], validity_ms=5_000.0)
        ingress = IngressDatabase(expiry_margin_ms=margin)
        egress = EgressDatabase(expiry_margin_ms=margin)
        paths = PathService(expiry_margin_ms=margin)
        ingress.insert(stored(beacon))
        egress.filter_new_interfaces(beacon.digest(), [1], expires_at_ms=beacon.expires_at_ms())
        paths.register(
            RegisteredPath(segment=segment, criteria_tags=("x",), registered_at_ms=0.0)
        )
        assert ingress.remove_expired(now_ms=0.0) == 0
        assert egress.remove_expired(now_ms=0.0) == 0
        assert paths.remove_expired(now_ms=0.0) == 0


class TestIndexedInvalidation:
    """The link/AS indexes behind revocation-driven withdrawal must remove
    exactly what the predicate scan removes."""

    def _populate(self, key_store, database):
        crossing = make_beacon(key_store, [(1, None, 1), (2, 1, 2)])
        other = make_beacon(key_store, [(3, None, 1), (2, 1, 2)])
        database.insert(stored(crossing, interface=1))
        database.insert(stored(other, interface=1))
        return crossing, other

    def test_indexed_link_removal_matches_scan(self, key_store):
        indexed = IngressDatabase(local_as=9)
        scanned = IngressDatabase()
        a_idx, b_idx = self._populate(key_store, indexed)
        self._populate(key_store, scanned)
        failed = ((1, 1), (2, 1))  # interior link of the first beacon
        assert indexed.remove_crossing_link(failed) == 1
        assert scanned.remove_crossing_link(failed, arrival_as=9) == 1
        assert sorted(s.beacon.digest() for s in indexed.all_beacons()) == sorted(
            s.beacon.digest() for s in scanned.all_beacons()
        )
        assert a_idx.digest() not in indexed
        assert b_idx.digest() in indexed

    def test_indexed_arrival_link_removal(self, key_store):
        # Both beacons arrived over 2.2 -> 9.1; failing that arrival link
        # must purge them from the indexed and the scanning store alike.
        indexed = IngressDatabase(local_as=9)
        scanned = IngressDatabase()
        self._populate(key_store, indexed)
        self._populate(key_store, scanned)
        arrival = ((2, 2), (9, 1))
        assert indexed.remove_crossing_link(arrival) == 2
        assert scanned.remove_crossing_link(arrival, arrival_as=9) == 2
        assert len(indexed) == 0 and len(scanned) == 0

    def test_indexed_as_removal_matches_scan(self, key_store):
        indexed = IngressDatabase(local_as=9)
        scanned = IngressDatabase()
        self._populate(key_store, indexed)
        self._populate(key_store, scanned)
        assert indexed.remove_crossing_as(1) == 1
        assert scanned.remove_crossing_as(1) == 1
        assert indexed.remove_crossing_as(2) == 1
        assert scanned.remove_crossing_as(2) == 1
        assert len(indexed) == 0 and len(scanned) == 0

    def test_index_cleaned_on_generic_removal(self, key_store):
        database = IngressDatabase(local_as=9)
        crossing, _other = self._populate(key_store, database)
        # Remove through the generic predicate path, then make sure the
        # link index no longer resurrects the digest.
        assert database.remove_matching(
            lambda s: s.beacon.digest() == crossing.digest()
        ) == 1
        assert database.remove_crossing_link(((1, 1), (2, 1))) == 0

    def test_path_service_link_and_as_indexes(self, key_store):
        service = PathService()
        crossing = make_beacon(key_store, [(1, None, 1), (2, 1, None)])
        other = make_beacon(key_store, [(3, None, 1), (2, 1, None)])
        service.register(
            RegisteredPath(segment=crossing, criteria_tags=("x",), registered_at_ms=0.0)
        )
        service.register(
            RegisteredPath(segment=other, criteria_tags=("x",), registered_at_ms=0.0)
        )
        assert service.remove_crossing_link(((1, 1), (2, 1))) == 1
        assert service.get(crossing.digest()) is None
        assert service.get(other.digest()) is not None
        assert service.remove_crossing_as(3) == 1
        assert len(service) == 0
        # Quota was released along the indexed removals.
        assert service.register(
            RegisteredPath(segment=crossing, criteria_tags=("x",), registered_at_ms=1.0)
        )
