"""Property-based tests (hypothesis) on core data structures and invariants."""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.disjointness_eval import tolerable_link_failures
from repro.core.algebra import (
    BANDWIDTH,
    LATENCY,
    PathVector,
    is_isotone,
    pareto_frontier,
)
from repro.core.beacon import BeaconBuilder
from repro.core.databases import EgressDatabase
from repro.core.sandbox import MeteredEvaluator, validate_restricted_source
from repro.core.staticinfo import StaticInfo
from repro.crypto.hashing import algorithm_hash
from repro.crypto.keys import KeyStore
from repro.crypto.signer import Signer, Verifier
from repro.simulation.events import (
    ScenarioTimeline,
    flapping_links,
    gray_failures,
    growth_churn,
)
from repro.topology.geo import GeoCoordinate, great_circle_km

from tests.conftest import line_topology

# Shared strategies ----------------------------------------------------------
latitudes = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)
longitudes = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
coordinates = st.builds(GeoCoordinate, latitude=latitudes, longitude=longitudes)

positive_latencies = st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False)
bandwidths = st.floats(min_value=0.001, max_value=1_000_000.0, allow_nan=False)


class TestGeoProperties:
    @given(a=coordinates, b=coordinates)
    def test_distance_symmetry_and_nonnegativity(self, a, b):
        forward = great_circle_km(a, b)
        backward = great_circle_km(b, a)
        assert forward >= 0.0
        assert math.isclose(forward, backward, rel_tol=1e-9, abs_tol=1e-6)

    @given(a=coordinates, b=coordinates, c=coordinates)
    def test_triangle_inequality(self, a, b, c):
        direct = great_circle_km(a, c)
        detour = great_circle_km(a, b) + great_circle_km(b, c)
        assert direct <= detour + 1e-6


class TestAlgebraProperties:
    @given(
        values=st.lists(
            st.tuples(positive_latencies, bandwidths), min_size=1, max_size=12
        )
    )
    def test_pareto_frontier_is_non_dominated_and_non_empty(self, values):
        labelled = [
            (index, PathVector.of({LATENCY: latency, BANDWIDTH: bandwidth}))
            for index, (latency, bandwidth) in enumerate(values)
        ]
        frontier = pareto_frontier(labelled)
        assert frontier
        frontier_vectors = [vector for _label, vector in frontier]
        all_vectors = [vector for _label, vector in labelled]
        for vector in frontier_vectors:
            assert not any(
                other.dominates(vector) for other in all_vectors if other is not vector
            )

    @given(
        path_values=st.lists(positive_latencies, min_size=2, max_size=6),
        extensions=st.lists(positive_latencies, min_size=1, max_size=6),
    )
    def test_additive_latency_is_isotone(self, path_values, extensions):
        assert is_isotone(LATENCY, path_values, extensions)

    @given(
        path_values=st.lists(bandwidths, min_size=2, max_size=6),
        extensions=st.lists(bandwidths, min_size=1, max_size=6),
    )
    def test_bottleneck_bandwidth_is_isotone(self, path_values, extensions):
        assert is_isotone(BANDWIDTH, path_values, extensions)


class TestBeaconProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        hop_latencies=st.lists(positive_latencies, min_size=1, max_size=8),
        hop_bandwidths=st.lists(bandwidths, min_size=1, max_size=8),
    )
    def test_metrics_accumulate_correctly_and_signatures_verify(
        self, hop_latencies, hop_bandwidths
    ):
        count = min(len(hop_latencies), len(hop_bandwidths))
        hop_latencies = hop_latencies[:count]
        hop_bandwidths = hop_bandwidths[:count]
        key_store = KeyStore()
        builder = BeaconBuilder(as_id=1, signer=Signer(as_id=1, key_store=key_store))
        beacon = builder.originate(
            egress_interface=1,
            created_at_ms=0.0,
            static_info=StaticInfo(
                link_latency_ms=hop_latencies[0], link_bandwidth_mbps=hop_bandwidths[0]
            ),
        )
        for index in range(1, count):
            as_id = index + 1
            hop_builder = BeaconBuilder(
                as_id=as_id, signer=Signer(as_id=as_id, key_store=key_store)
            )
            beacon = hop_builder.extend(
                beacon,
                ingress_interface=1,
                egress_interface=2,
                static_info=StaticInfo(
                    link_latency_ms=hop_latencies[index],
                    link_bandwidth_mbps=hop_bandwidths[index],
                ),
            )
        assert beacon.hop_count == count
        assert beacon.total_latency_ms() <= sum(hop_latencies) + 1e-6
        assert math.isclose(
            beacon.total_latency_ms(), sum(hop_latencies), rel_tol=1e-9, abs_tol=1e-6
        )
        assert math.isclose(
            beacon.bottleneck_bandwidth_mbps(), min(hop_bandwidths), rel_tol=1e-9
        )
        beacon.verify(Verifier(key_store=key_store))
        # The AS path never contains duplicates (loop freedom).
        path = beacon.as_path()
        assert len(path) == len(set(path))


class TestSandboxProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        latency=positive_latencies,
        bandwidth=bandwidths,
        hops=st.integers(min_value=1, max_value=20),
    )
    def test_evaluator_matches_python_semantics(self, latency, bandwidth, hops):
        source = "latency_ms * 2 + hop_count - min(bandwidth_mbps, 100)"
        evaluator = MeteredEvaluator(tree=validate_restricted_source(source))
        variables = {
            "latency_ms": latency,
            "bandwidth_mbps": bandwidth,
            "hop_count": float(hops),
        }
        expected = latency * 2 + hops - min(bandwidth, 100)
        assert math.isclose(evaluator.evaluate(variables), expected, rel_tol=1e-9, abs_tol=1e-9)


class TestCDFProperties:
    @given(samples=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_cdf_is_monotone_and_bounded(self, samples):
        cdf = EmpiricalCDF.from_samples(samples)
        probes = sorted(samples)
        previous = 0.0
        for probe in probes:
            probability = cdf.probability_at_or_below(probe)
            assert 0.0 <= probability <= 1.0
            assert probability >= previous - 1e-12
            previous = probability
        assert cdf.probability_at_or_below(max(samples)) == 1.0

    @given(samples=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100))
    def test_quantiles_within_sample_range(self, samples):
        cdf = EmpiricalCDF.from_samples(samples)
        assert min(samples) <= cdf.median <= max(samples)


class TestHashAndDedupProperties:
    @given(payload=st.binary(min_size=0, max_size=512))
    def test_hash_stability(self, payload):
        assert algorithm_hash(payload) == algorithm_hash(payload)

    @given(
        interfaces=st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=30)
    )
    def test_egress_database_never_returns_duplicates(self, interfaces):
        database = EgressDatabase()
        seen = set()
        for chunk_start in range(0, len(interfaces), 5):
            chunk = interfaces[chunk_start:chunk_start + 5]
            fresh = database.filter_new_interfaces("digest", chunk, expires_at_ms=1.0)
            assert not (set(fresh) & seen)
            seen.update(fresh)
        assert database.interfaces_for("digest") == seen


class TestTLFProperties:
    @given(
        path_count=st.integers(min_value=1, max_value=6),
    )
    def test_tlf_of_disjoint_parallel_paths_equals_path_count(self, path_count):
        paths = []
        for index in range(path_count):
            intermediate = 100 + index
            paths.append(
                [((1, index + 1), (intermediate, 1)), ((intermediate, 2), (2, index + 1))]
            )
        assert tolerable_link_failures(paths, 1, 2) == path_count

    @given(path_count=st.integers(min_value=2, max_value=6))
    def test_tlf_bounded_by_shared_first_hop(self, path_count):
        shared = ((1, 1), (50, 1))
        paths = []
        for index in range(path_count):
            intermediate = 100 + index
            paths.append(
                [shared, ((50, index + 2), (intermediate, 1)), ((intermediate, 2), (2, index + 1))]
            )
        assert tolerable_link_failures(paths, 1, 2) == 1


class TestAdversarialGeneratorProperties:
    """PR 7: seeded event generators are pure functions of their seed."""

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_generators_are_seed_deterministic(self, seed):
        """Same seed ⇒ identical event times and trace labels."""
        topology = line_topology(6)

        def schedule():
            events = []
            events += flapping_links(
                topology,
                count=2,
                rng=random.Random(seed),
                start_ms=1_000.0,
                loss_rate=0.2,
            )
            events += gray_failures(
                topology,
                count=2,
                rng=random.Random(seed + 1),
                at_ms=2_000.0,
                drop_rate=0.5,
                duration_ms=500.0,
            )
            events += growth_churn(
                topology,
                count=2,
                rng=random.Random(seed + 2),
                start_ms=3_000.0,
                spacing_ms=100.0,
            )
            return [(timed.time_ms, timed.trace_label()) for timed in events]

        assert schedule() == schedule()

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_generated_timelines_always_validate(self, seed):
        """Whatever the seed, generated events target only real elements."""
        topology = line_topology(5)
        timeline = ScenarioTimeline()
        timeline.extend(
            flapping_links(
                topology, count=1, rng=random.Random(seed), start_ms=500.0
            )
        )
        timeline.extend(
            gray_failures(
                topology,
                count=1,
                rng=random.Random(seed),
                at_ms=1_500.0,
                duration_ms=200.0,
            )
        )
        timeline.extend(
            growth_churn(
                topology,
                count=1,
                rng=random.Random(seed),
                start_ms=2_500.0,
                spacing_ms=100.0,
            )
        )
        timeline.validate(topology)
