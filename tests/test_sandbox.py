"""Tests for sandboxed execution of on-demand algorithm payloads."""

import pytest

from repro.algorithms.base import CandidateBeacon, ExecutionContext
from repro.core.sandbox import (
    DEFAULT_STEP_BUDGET,
    MAX_PAYLOAD_BYTES,
    MeteredEvaluator,
    RestrictedPythonAlgorithm,
    SandboxRuntime,
    validate_restricted_source,
)
from repro.exceptions import SandboxResourceError, SandboxViolationError

from tests.conftest import make_beacon


def context_for(candidates, egress_interfaces=(1,), limit=20):
    return ExecutionContext(
        local_as=999,
        candidates=tuple(candidates),
        egress_interfaces=tuple(egress_interfaces),
        max_paths_per_interface=limit,
        intra_latency_ms=lambda a, b: 0.0,
    )


class TestValidation:
    def test_valid_expression(self):
        validate_restricted_source("latency_ms + 2 * hop_count")

    def test_calls_limited_to_allow_list(self):
        validate_restricted_source("min(latency_ms, 10)")
        with pytest.raises(SandboxViolationError):
            validate_restricted_source("open('/etc/passwd')")

    def test_imports_rejected(self):
        with pytest.raises(SandboxViolationError):
            validate_restricted_source("__import__('os').system('true')")

    def test_attribute_access_rejected(self):
        with pytest.raises(SandboxViolationError):
            validate_restricted_source("latency_ms.__class__")

    def test_statements_rejected(self):
        with pytest.raises(SandboxViolationError):
            validate_restricted_source("x = 1")

    def test_lambda_and_comprehension_rejected(self):
        with pytest.raises(SandboxViolationError):
            validate_restricted_source("(lambda: 1)()")
        with pytest.raises(SandboxViolationError):
            validate_restricted_source("[x for x in (1, 2)]")

    def test_keyword_arguments_rejected(self):
        with pytest.raises(SandboxViolationError):
            validate_restricted_source("round(latency_ms, ndigits=2)")

    def test_oversized_payload_rejected(self):
        source = "1 + " * (MAX_PAYLOAD_BYTES // 4) + "1"
        with pytest.raises(SandboxViolationError):
            validate_restricted_source(source)

    def test_long_string_constant_rejected(self):
        with pytest.raises(SandboxViolationError):
            validate_restricted_source(f"len({'x' * 300!r})")

    def test_syntax_error_rejected(self):
        with pytest.raises(SandboxViolationError):
            validate_restricted_source("latency_ms +")


class TestMeteredEvaluator:
    def evaluate(self, source, variables=None, budget=DEFAULT_STEP_BUDGET):
        tree = validate_restricted_source(source)
        return MeteredEvaluator(tree=tree, step_budget=budget).evaluate(variables or {})

    def test_arithmetic(self):
        assert self.evaluate("1 + 2 * 3") == 7.0
        assert self.evaluate("2 ** 5") == 32.0
        assert self.evaluate("7 % 3") == 1.0
        assert self.evaluate("7 // 2") == 3.0
        assert self.evaluate("-5 + +2") == -3.0

    def test_comparisons_and_conditional(self):
        assert self.evaluate("10 if 3 < 5 else 20") == 10.0
        assert self.evaluate("10 if 3 >= 5 else 20") == 20.0
        assert self.evaluate("1 if 1 <= 1 <= 2 else 0") == 1.0

    def test_boolean_operators(self):
        assert self.evaluate("1 if (1 < 2 and 3 < 4) else 0") == 1.0
        assert self.evaluate("1 if (1 > 2 or 3 < 4) else 0") == 1.0
        assert self.evaluate("0 if not (1 < 2) else 1") == 1.0

    def test_variables(self):
        assert self.evaluate("latency_ms * 2", {"latency_ms": 21.0}) == 42.0

    def test_unknown_variable(self):
        with pytest.raises(SandboxViolationError):
            self.evaluate("unknown_name")

    def test_builtin_calls(self):
        assert self.evaluate("min(3, 1, 2)") == 1.0
        assert self.evaluate("max(3, 1, 2)") == 3.0
        assert self.evaluate("abs(0 - 5)") == 5.0
        assert self.evaluate("len((1, 2, 3))") == 3.0

    def test_step_budget_enforced(self):
        with pytest.raises(SandboxResourceError):
            self.evaluate("1 + " * 50 + "1", budget=10)

    def test_huge_exponent_rejected(self):
        with pytest.raises(SandboxResourceError):
            self.evaluate("2 ** 1000")


class TestRestrictedPythonAlgorithm:
    def test_scores_and_selects(self, key_store):
        fast = make_beacon(key_store, [(1, None, 1), (2, 1, 2)], link_latencies=[5.0, 5.0])
        slow = make_beacon(key_store, [(1, None, 1), (3, 1, 2)], link_latencies=[50.0, 50.0])
        candidates = [CandidateBeacon(beacon=b, ingress_interface=1) for b in (slow, fast)]
        algorithm = RestrictedPythonAlgorithm(source="latency_ms", paths_per_interface=1)
        result = algorithm.execute(context_for(candidates))
        assert result.beacons_for(1)[0].digest() == fast.digest()

    def test_constraints_via_infinite_score(self, key_store):
        ok = make_beacon(key_store, [(1, None, 1), (2, 1, 2)], link_latencies=[5.0, 5.0])
        too_slow = make_beacon(key_store, [(1, None, 1), (3, 1, 2)], link_latencies=[50.0, 50.0])
        candidates = [CandidateBeacon(beacon=b, ingress_interface=1) for b in (ok, too_slow)]
        algorithm = RestrictedPythonAlgorithm(
            source="latency_ms if latency_ms <= 30 else inf", paths_per_interface=5
        )
        selected = algorithm.execute(context_for(candidates)).beacons_for(1)
        assert len(selected) == 1
        assert selected[0].digest() == ok.digest()

    def test_invalid_source_rejected_at_construction(self):
        with pytest.raises(SandboxViolationError):
            RestrictedPythonAlgorithm(source="__import__('os')")

    def test_bandwidth_objective(self, key_store):
        narrow = make_beacon(key_store, [(1, None, 1), (2, 1, 2)], link_bandwidths=[10.0, 10.0])
        wide = make_beacon(key_store, [(1, None, 1), (3, 1, 2)], link_bandwidths=[900.0, 900.0])
        candidates = [CandidateBeacon(beacon=b, ingress_interface=1) for b in (narrow, wide)]
        algorithm = RestrictedPythonAlgorithm(source="0 - bandwidth_mbps", paths_per_interface=1)
        assert algorithm.execute(context_for(candidates)).beacons_for(1)[0].digest() == wide.digest()


class TestSandboxRuntime:
    def test_setup_recreates_restricted_python(self):
        runtime = SandboxRuntime()
        algorithm = RestrictedPythonAlgorithm(source="latency_ms")
        prepared, elapsed = runtime.setup(algorithm)
        assert prepared is not algorithm
        assert isinstance(prepared, RestrictedPythonAlgorithm)
        assert elapsed >= 0.0
        assert runtime.stats.setups == 1

    def test_setup_passes_through_other_algorithms(self):
        from repro.algorithms.shortest_path import KShortestPathAlgorithm

        runtime = SandboxRuntime(modelled_setup_ms=3.0)
        algorithm = KShortestPathAlgorithm(k=2)
        prepared, elapsed = runtime.setup(algorithm)
        assert prepared is algorithm
        assert elapsed >= 3.0
        assert runtime.stats.elapsed_ms >= 3.0

    def test_stats_reset(self):
        runtime = SandboxRuntime()
        runtime.setup(RestrictedPythonAlgorithm(source="1"))
        runtime.stats.reset()
        assert runtime.stats.setups == 0
        assert runtime.stats.elapsed_ms == 0.0
