"""Tests of the experiment sweep harness (PR 7).

Covers the JSONL result logger (schema validation, parse errors), grid
loading/validation, end-to-end sweeps on a tiny grid (determinism, the
attackers-disabled digest-equality acceptance check) and headless plot
rendering with the dependency-free SVG backend.
"""

import json
import os
import sys

import pytest

_BENCHMARKS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if _BENCHMARKS not in sys.path:
    sys.path.insert(0, _BENCHMARKS)

import plot_results  # noqa: E402
import result_logger  # noqa: E402
import run_experiments  # noqa: E402
from result_logger import (  # noqa: E402
    ResultLogger,
    ResultLoggerError,
    iter_results,
    load_results,
)


def _record(**overrides):
    record = {
        "schema": result_logger.SCHEMA_VERSION,
        "grid": "g",
        "scenario": "clean",
        "policy": "don",
        "scale": "tiny",
        "seed": 7,
        "metrics": {"messages_sent": 10},
    }
    record.update(overrides)
    return record


def _tiny_grid(scenarios, seed=21, periods=2, **scenario_tables):
    grid = {
        "grid": {
            "name": "test-grid",
            "seed": seed,
            "periods": periods,
            "verify_signatures": True,
            "scenarios": scenarios,
            "policies": ["don"],
            "scales": ["tiny"],
        },
        "traffic": {
            "demand_mbps": 500.0,
            "flows": 50,
            "max_pairs": 4,
            "rounds_per_period": 2,
        },
    }
    if scenario_tables:
        grid["scenarios"] = scenario_tables
    return grid


class TestResultLogger:
    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        logger = ResultLogger(path)
        logger.append(_record(seed=1))
        logger.append(_record(seed=2))
        assert logger.records_written == 2
        loaded = load_results(path)
        assert [record["seed"] for record in loaded] == [1, 2]

    def test_missing_required_field_rejected(self, tmp_path):
        logger = ResultLogger(str(tmp_path / "r.jsonl"))
        bad = _record()
        del bad["metrics"]
        with pytest.raises(ResultLoggerError):
            logger.append(bad)

    def test_non_dict_metrics_rejected(self, tmp_path):
        logger = ResultLogger(str(tmp_path / "r.jsonl"))
        with pytest.raises(ResultLoggerError):
            logger.append(_record(metrics=[1, 2]))

    def test_malformed_line_names_its_line_number(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text(
            json.dumps(_record()) + "\n" + "{not json\n", encoding="utf-8"
        )
        with pytest.raises(ResultLoggerError, match=":2:"):
            list(iter_results(str(path)))

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text(json.dumps(_record()) + "\n\n", encoding="utf-8")
        assert len(load_results(str(path))) == 1

    def test_truncation_vs_append_mode(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        ResultLogger(path).append(_record(seed=1))
        ResultLogger(path, append=True).append(_record(seed=2))
        assert len(load_results(path)) == 2
        ResultLogger(path).append(_record(seed=3))
        assert [r["seed"] for r in load_results(path)] == [3]


class TestGridLoading:
    def test_unknown_scenario_rejected(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text(
            '[grid]\nname = "g"\nscenarios = ["nope"]\n'
            'policies = ["don"]\nscales = ["tiny"]\n',
            encoding="utf-8",
        )
        with pytest.raises(SystemExit, match="unknown scenario"):
            run_experiments.load_grid(str(path))

    def test_unknown_policy_rejected(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text(
            '[grid]\nname = "g"\nscenarios = ["clean"]\n'
            'policies = ["bgp"]\nscales = ["tiny"]\n',
            encoding="utf-8",
        )
        with pytest.raises(SystemExit, match="unknown policy"):
            run_experiments.load_grid(str(path))

    def test_missing_grid_table_rejected(self, tmp_path):
        path = tmp_path / "grid.toml"
        path.write_text('[traffic]\ndemand_mbps = 1.0\n', encoding="utf-8")
        with pytest.raises(SystemExit, match="missing"):
            run_experiments.load_grid(str(path))

    def test_checked_in_grids_load(self):
        repo = os.path.dirname(_BENCHMARKS)
        for name in ("adversarial_small.toml", "smoke.toml"):
            grid = run_experiments.load_grid(
                os.path.join(repo, "examples", "grids", name)
            )
            assert run_experiments.grid_cells(grid)

    def test_cells_are_sorted(self):
        grid = _tiny_grid(["gray", "clean"])
        grid["grid"]["policies"] = ["don", "dob300"]
        cells = run_experiments.grid_cells(grid)
        assert cells == sorted(cells)
        assert len(cells) == 4


class TestSweepEndToEnd:
    def test_sweep_writes_valid_jsonl(self, tmp_path):
        grid = _tiny_grid(["clean"])
        out = str(tmp_path / "out.jsonl")
        written = run_experiments.run_sweep(grid, out, quiet=True)
        assert written == 1
        (record,) = load_results(out)
        assert record["scenario"] == "clean"
        assert record["policy"] == "don"
        assert record["seed"] == 21
        metrics = record["metrics"]
        for key in (
            "messages_sent",
            "convergence_digest",
            "traffic_mean_carried_mbps",
            "revocations_received",
            "wall_time_s",
        ):
            assert key in metrics
        assert metrics["traffic_rounds"] > 0

    def test_sweep_is_deterministic(self, tmp_path):
        grid = _tiny_grid(["gray"], gray={"links": 1, "drop_rate": 1.0})
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        run_experiments.run_sweep(grid, str(first), quiet=True)
        run_experiments.run_sweep(grid, str(second), quiet=True)
        # Strip the wall-time stamp (the only non-deterministic field).
        def stable(path):
            records = load_results(str(path))
            for record in records:
                record["metrics"].pop("wall_time_s")
            return records

        assert stable(first) == stable(second)

    def test_disabled_byzantine_cell_matches_clean_digest(self, tmp_path):
        """Acceptance: attackers off ⇒ the cell is bit-for-bit the clean run."""
        clean_grid = _tiny_grid(["clean"])
        disabled_grid = _tiny_grid(
            ["byzantine"], byzantine={"enabled": False}
        )
        clean_out = tmp_path / "clean.jsonl"
        disabled_out = tmp_path / "disabled.jsonl"
        run_experiments.run_sweep(clean_grid, str(clean_out), quiet=True)
        run_experiments.run_sweep(disabled_grid, str(disabled_out), quiet=True)
        (clean,) = load_results(str(clean_out))
        (disabled,) = load_results(str(disabled_out))
        assert (
            disabled["metrics"]["convergence_digest"]
            == clean["metrics"]["convergence_digest"]
        )
        assert (
            disabled["metrics"]["traffic_trace_digest"]
            == clean["metrics"]["traffic_trace_digest"]
        )

    def test_byzantine_cell_rejects_every_forgery(self, tmp_path):
        grid = _tiny_grid(
            ["byzantine"],
            byzantine={"enabled": True, "forgeries": 2, "replays": 0},
        )
        out = str(tmp_path / "byz.jsonl")
        run_experiments.run_sweep(grid, out, quiet=True)
        (record,) = load_results(out)
        metrics = record["metrics"]
        assert metrics["revocations_received"] > 0
        assert (
            metrics["revocations_rejected_invalid"]
            == metrics["revocations_received"]
        )


class TestPlotting:
    def _results(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        logger = ResultLogger(path)
        for scenario in ("clean", "gray"):
            for policy, sent in (("don", 100), ("dob300", 150)):
                logger.append(
                    _record(
                        scenario=scenario,
                        policy=policy,
                        metrics={
                            "messages_sent": sent,
                            "gray_dropped": 5 if scenario == "gray" else 0,
                        },
                    )
                )
        return path

    def test_svg_backend_renders_headlessly(self, tmp_path):
        results = self._results(tmp_path)
        out_dir = str(tmp_path / "plots")
        written = plot_results.plot_all(
            results, out_dir, metrics=("messages_sent", "gray_dropped"), fmt="svg"
        )
        assert len(written) == 2
        for path in written:
            content = open(path, encoding="utf-8").read()
            assert content.startswith("<svg")
            assert "</svg>" in content

    def test_absent_metric_is_skipped_not_fatal(self, tmp_path):
        results = self._results(tmp_path)
        written = plot_results.plot_all(
            results,
            str(tmp_path / "plots"),
            metrics=("messages_sent", "no_such_metric"),
            fmt="svg",
        )
        assert len(written) == 1

    def test_group_metric_averages_repeats(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        logger = ResultLogger(path)
        logger.append(_record(seed=1, metrics={"m": 10}))
        logger.append(_record(seed=2, metrics={"m": 30}))
        scenarios, policies, values = plot_results.group_metric(
            load_results(path), "m"
        )
        assert scenarios == ["clean"]
        assert policies == ["don"]
        assert values[("clean", "don")] == pytest.approx(20.0)

    def test_empty_results_fail_loudly(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(SystemExit):
            plot_results.plot_all(str(path), str(tmp_path / "plots"))
