"""Tests for the dynamic-scenario subsystem.

Covers the timeline DSL, the live link/AS state, event application inside
the beaconing driver (failures interrupting propagation, churn, policy and
RAC hot-swaps, period changes) and the convergence metrics the collector
derives from watched AS pairs.
"""

import random

import pytest

from repro.exceptions import ConfigurationError, PolicyViolationError, SimulationError
from repro.algorithms.shortest_path import KShortestPathAlgorithm
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.events import (
    ASJoin,
    ASLeave,
    BeaconPeriodChange,
    LinkFailure,
    LinkRecovery,
    PolicySwap,
    RACSwap,
    ScenarioTimeline,
    TimedEvent,
    random_churn,
    random_link_failures,
)
from repro.simulation.failures import LinkState
from repro.simulation.scenario import (
    AlgorithmSpec,
    ScenarioConfig,
    don_scenario,
    one_shortest_path_spec,
)
from repro.units import minutes

from tests.conftest import line_topology


def _mid_period(period: int, interval_ms: float = minutes(10)) -> float:
    return period * interval_ms + interval_ms / 2.0


class TestTimelineDSL:
    def test_builder_chains_and_orders(self):
        timeline = ScenarioTimeline()
        link = ((1, 2), (2, 1))
        timeline.at(100.0).fail_link(link).at(200.0).recover_link(link).as_leave(7)
        kinds = [type(timed.event) for timed in timeline]
        assert kinds == [LinkFailure, LinkRecovery, ASLeave]
        assert [timed.time_ms for timed in timeline] == [100.0, 200.0, 200.0]

    def test_scenario_at_delegates_to_timeline(self):
        scenario = don_scenario(periods=2)
        scenario.at(50.0).as_join(3).set_beacon_period(minutes(5))
        assert len(scenario.timeline) == 2
        assert isinstance(scenario.timeline.events[1].event, BeaconPeriodChange)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            TimedEvent(time_ms=-1.0, event=ASLeave(as_id=1))

    def test_non_positive_period_rejected(self):
        with pytest.raises(ConfigurationError):
            BeaconPeriodChange(interval_ms=0.0)

    def test_link_ids_are_normalised(self):
        event = LinkFailure(link_id=((2, 1), (1, 2)))
        assert event.link_id == ((1, 2), (2, 1))

    def test_trace_labels_are_stable(self):
        assert LinkFailure(((1, 2), (2, 1))).trace_label() == "fail_link 1.2-2.1"
        assert ASLeave(9).trace_label() == "as_leave 9"
        assert PolicySwap(label="strict", as_ids=(3, 4)).trace_label() == (
            "policy_swap strict @ 3,4"
        )
        spec = one_shortest_path_spec()
        assert RACSwap(spec=spec).trace_label() == "rac_swap 1sp->1sp @ all"

    def test_extend_validates_type(self):
        with pytest.raises(ConfigurationError):
            ScenarioTimeline().extend([ASLeave(as_id=1)])  # not a TimedEvent


class TestTimelineValidation:
    """Satellite: impossible schedules fail loudly instead of no-opping."""

    link = ((1, 2), (2, 1))

    def test_recovery_without_failure_rejected(self):
        timeline = ScenarioTimeline()
        timeline.at(100.0).recover_link(self.link)
        with pytest.raises(ConfigurationError, match="not failed"):
            timeline.validate()

    def test_recovery_scheduled_before_its_failure_rejected(self):
        timeline = ScenarioTimeline()
        # Insertion order is fine, execution order is not: the recovery
        # fires at 100 ms, before the 200 ms failure.
        timeline.at(200.0).fail_link(self.link).at(100.0).recover_link(self.link)
        with pytest.raises(ConfigurationError, match="not failed"):
            timeline.validate()

    def test_double_recovery_rejected(self):
        timeline = ScenarioTimeline()
        timeline.at(10.0).fail_link(self.link)
        timeline.at(20.0).recover_link(self.link).at(30.0).recover_link(self.link)
        with pytest.raises(ConfigurationError, match="not failed"):
            timeline.validate()

    def test_join_without_leave_rejected(self):
        timeline = ScenarioTimeline()
        timeline.at(50.0).as_join(3)
        with pytest.raises(ConfigurationError, match="not offline"):
            timeline.validate()

    def test_valid_schedules_pass(self):
        timeline = ScenarioTimeline()
        timeline.at(10.0).fail_link(self.link).at(20.0).recover_link(self.link)
        timeline.at(30.0).fail_link(self.link).at(40.0).recover_link(self.link)
        timeline.at(50.0).as_leave(3).at(60.0).as_join(3)
        timeline.validate()  # must not raise

    def test_negative_event_time_rejected_with_clear_error(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            ScenarioTimeline().add(-5.0, LinkFailure(link_id=self.link))

    def test_engine_rejects_recovery_of_never_failed_link(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=2, verify_signatures=False)
        scenario.at(100.0).recover_link(topology.link_ids()[0])
        with pytest.raises(ConfigurationError, match="not failed"):
            BeaconingSimulation(topology, scenario)


class TestLinkState:
    def test_link_and_as_availability(self):
        state = LinkState()
        link = ((1, 2), (2, 1))
        assert state.link_available(link)
        state.fail_link(link)
        assert not state.link_available(link)
        state.restore_link(link)
        assert state.link_available(link)

        state.set_as_offline(2)
        assert not state.link_available(link)  # endpoint down takes link down
        assert state.is_link_up(link)  # ...but the link itself is not failed
        state.set_as_online(2)
        assert state.link_available(link)

    def test_path_availability(self):
        state = LinkState()
        links = [((1, 2), (2, 1)), ((2, 2), (3, 1))]
        assert state.path_available(links)
        state.fail_link(links[1])
        assert not state.path_available(links)


class TestEngineValidation:
    def test_unknown_link_in_timeline_rejected(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=1, verify_signatures=False)
        scenario.at(10.0).fail_link(((1, 1), (99, 1)))
        with pytest.raises(SimulationError):
            BeaconingSimulation(topology, scenario)

    def test_unknown_as_in_timeline_rejected(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=1, verify_signatures=False)
        scenario.at(10.0).as_leave(99)
        with pytest.raises(SimulationError):
            BeaconingSimulation(topology, scenario)

    def test_unknown_watch_pair_rejected(self):
        topology = line_topology(3)
        simulation = BeaconingSimulation(topology, don_scenario(periods=1, verify_signatures=False))
        from repro.exceptions import UnknownASError

        with pytest.raises(UnknownASError):
            simulation.watch_pair(1, 99)


class TestFailureAndRecovery:
    def _run_fail_recover(self, fail_at_ms, recover_at_ms, periods=7):
        topology = line_topology(4)
        scenario = don_scenario(periods=periods, verify_signatures=False)
        link = topology.link_ids()[1]  # the 2-3 link
        scenario.at(fail_at_ms).fail_link(link).at(recover_at_ms).recover_link(link)
        simulation = BeaconingSimulation(topology, scenario)
        simulation.watch_pair(3, 1)
        return simulation, simulation.run()

    def test_failure_interrupts_and_recovery_heals(self):
        simulation, result = self._run_fail_recover(
            fail_at_ms=_mid_period(2), recover_at_ms=_mid_period(4)
        )
        records = result.convergence.records
        assert len(records) == 1
        record = records[0]
        assert record.paths_lost >= 1
        assert record.recovered
        assert record.time_to_recovery_ms > 0
        assert record.paths_regained >= 1
        assert record.control_message_overhead > 0
        # After recovery the watched pair reports no ongoing outage.
        assert result.convergence.current_outage_ms(3, 1, result.final_time_ms) == 0.0
        # The failure really dropped PCBs and triggered a revocation flood.
        assert result.collector.total_dropped > 0
        assert result.collector.total_revocations > 0

    def test_unrecovered_failure_stays_open(self):
        topology = line_topology(4)
        scenario = don_scenario(periods=4, verify_signatures=False)
        link = topology.link_ids()[1]
        scenario.at(_mid_period(2)).fail_link(link)
        simulation = BeaconingSimulation(topology, scenario)
        simulation.watch_pair(3, 1)
        result = simulation.run()
        open_records = result.convergence.open_disruptions()
        assert len(open_records) == 1
        assert open_records[0].time_to_recovery_ms is None
        outage = result.convergence.current_outage_ms(3, 1, result.final_time_ms)
        assert outage > 0
        # The registered path crossing the dead link was withdrawn everywhere.
        assert simulation.usable_path_count(3, 1) == 0

    def test_databases_purged_on_failure(self):
        topology = line_topology(4)
        scenario = don_scenario(periods=3, verify_signatures=False)
        link = topology.link_ids()[1]
        scenario.at(_mid_period(2)).fail_link(link)
        simulation = BeaconingSimulation(topology, scenario)
        result = simulation.run()
        # No AS keeps an ingress beacon or registered path crossing the link.
        for service in result.services.values():
            for stored in service.ingress.database.all_beacons():
                assert link not in stored.beacon.links()
            for path in service.path_service.all_paths():
                assert link not in path.segment.links()

    def test_dynamic_run_is_deterministic(self):
        _sim_a, result_a = self._run_fail_recover(_mid_period(2), _mid_period(4))
        _sim_b, result_b = self._run_fail_recover(_mid_period(2), _mid_period(4))
        assert result_a.convergence.trace_text() == result_b.convergence.trace_text()
        assert result_a.collector.total_sent == result_b.collector.total_sent
        assert result_a.collector.total_dropped == result_b.collector.total_dropped


class TestChurn:
    def test_as_leave_and_rejoin(self):
        topology = line_topology(4)
        scenario = don_scenario(periods=7, verify_signatures=False)
        scenario.at(_mid_period(2)).as_leave(2).at(_mid_period(3)).as_join(2)
        simulation = BeaconingSimulation(topology, scenario)
        simulation.watch_pair(3, 1)
        result = simulation.run()
        records = result.convergence.records
        assert len(records) == 1
        assert records[0].paths_lost >= 1
        assert records[0].recovered  # paths re-propagate after the rejoin
        assert records[0].time_to_recovery_ms > 0

    def test_offline_as_neither_originates_nor_processes(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=2, verify_signatures=False)
        scenario.at(0.0).as_leave(2)
        simulation = BeaconingSimulation(topology, scenario)
        result = simulation.run()
        # AS 2 is the only transit: nothing can traverse it while offline.
        assert simulation.usable_path_count(3, 1) == 0
        # Its own databases were wiped by the cold restart.
        assert len(result.service(2).ingress.database) == 0

    def test_state_crossing_departed_as_withdrawn(self):
        topology = line_topology(4)
        scenario = don_scenario(periods=4, verify_signatures=False)
        scenario.at(_mid_period(3)).as_leave(2)
        simulation = BeaconingSimulation(topology, scenario)
        result = simulation.run()
        for as_id, service in result.services.items():
            if as_id == 2:
                continue
            for path in service.path_service.all_paths():
                assert not path.segment.contains_as(2)


class TestOperatorEvents:
    def test_policy_swap_applies_mid_run(self):
        def reject_all(beacon, as_id):
            raise PolicyViolationError("locked down")

        topology = line_topology(3)
        scenario = don_scenario(periods=3, verify_signatures=False)
        scenario.at(_mid_period(0)).swap_policies([reject_all], as_ids=[2], label="lockdown")
        simulation = BeaconingSimulation(topology, scenario)
        result = simulation.run()
        stats = result.service(2).ingress.stats
        assert stats.rejected_policy > 0
        # Other ASes were not reconfigured.
        assert result.service(3).ingress.stats.rejected_policy == 0

    def test_policy_swap_applies_to_legacy_ases(self):
        def reject_all(beacon, as_id):
            raise PolicyViolationError("locked down")

        topology = line_topology(3)
        scenario = ScenarioConfig(
            algorithms=(one_shortest_path_spec(),),
            periods=3,
            verify_signatures=False,
            legacy_ases=(2,),
        )
        scenario.at(_mid_period(0)).swap_policies([reject_all], as_ids=[2], label="lockdown")
        result = BeaconingSimulation(topology, scenario).run()
        assert result.service(2).ingress.stats.rejected_policy > 0

    def test_swap_targeting_unknown_as_rejected_at_construction(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=1, verify_signatures=False)
        scenario.at(10.0).swap_policies([], as_ids=[99])
        with pytest.raises(SimulationError):
            BeaconingSimulation(topology, scenario)

    def test_rac_hot_swap_replaces_container(self):
        topology = line_topology(3)
        scenario = ScenarioConfig(
            algorithms=(one_shortest_path_spec(),),
            periods=4,
            verify_signatures=False,
        )
        replacement = AlgorithmSpec(
            rac_id="2sp", factory=lambda: KShortestPathAlgorithm(k=2)
        )
        scenario.at(_mid_period(1)).swap_rac(replacement, replace_rac_id="1sp")
        simulation = BeaconingSimulation(topology, scenario)
        result = simulation.run()
        for service in result.services.values():
            assert [rac.config.rac_id for rac in service.racs] == ["2sp"]
        # The swapped-in RAC keeps the control plane productive: paths
        # registered after the swap carry the new criteria tag.
        paths = result.service(3).path_service.paths_to(1)
        assert paths
        assert any("2sp" in path.criteria_tags for path in paths)

    def test_beacon_period_change_applies_to_later_periods(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=3, verify_signatures=False)
        scenario.at(_mid_period(0)).set_beacon_period(minutes(5))
        simulation = BeaconingSimulation(topology, scenario)
        result = simulation.run()
        # Period 0 keeps its 10-minute length; periods 1 and 2 are 5 minutes.
        assert result.final_time_ms == pytest.approx(minutes(10) + 2 * minutes(5) + 1.0)


class TestReviewRegressions:
    def test_in_flight_beacon_crossing_failed_link_is_dropped(self, key_store):
        # A PCB whose *own path* crosses a link that fails while the PCB is
        # in flight on a different (healthy) link must not be delivered:
        # it would re-poison the databases the invalidation flood purged.
        from repro.core.control_service import IrecControlService
        from repro.core.local_view import LocalTopologyView
        from repro.simulation.engine import EventScheduler
        from repro.simulation.network import SimulatedTransport
        from tests.conftest import make_beacon

        topology = line_topology(3)
        scheduler = EventScheduler()
        link_state = LinkState()
        transport = SimulatedTransport(
            topology=topology, scheduler=scheduler, link_state=link_state
        )
        for as_info in topology:
            view = LocalTopologyView.from_topology(topology, as_info.as_id)
            service = IrecControlService(view=view, key_store=key_store, transport=transport)
            transport.register(service)

        beacon = make_beacon(key_store, [(1, None, 2), (2, 1, 2)])
        transport.send_beacon(2, 2, beacon)  # in flight towards AS 3
        link_state.fail_link(((1, 2), (2, 1)))  # beacon's first hop fails
        scheduler.run_all()
        assert len(transport.service_of(3).ingress.database) == 0
        assert transport.collector.total_dropped == 1

    def test_rac_swap_of_unknown_rac_raises_when_targeted(self):
        topology = line_topology(3)
        scenario = ScenarioConfig(
            algorithms=(one_shortest_path_spec(),), periods=2, verify_signatures=False
        )
        replacement = AlgorithmSpec(
            rac_id="2sp", factory=lambda: KShortestPathAlgorithm(k=2)
        )
        scenario.at(_mid_period(0)).swap_rac(replacement, replace_rac_id="nope", as_ids=[2])
        simulation = BeaconingSimulation(topology, scenario)
        with pytest.raises(SimulationError):
            simulation.run()

    def test_broadcast_rac_swap_skips_ases_without_target(self):
        # A broadcast swap tolerates ASes that do not deploy the target RAC
        # (e.g. after an earlier per-AS swap) — and must NOT install the
        # replacement there, which would silently double the deployment.
        topology = line_topology(3)
        scenario = ScenarioConfig(
            algorithms=(one_shortest_path_spec(),), periods=2, verify_signatures=False
        )
        replacement = AlgorithmSpec(
            rac_id="2sp", factory=lambda: KShortestPathAlgorithm(k=2)
        )
        scenario.at(_mid_period(0)).swap_rac(replacement, replace_rac_id="nope")
        simulation = BeaconingSimulation(topology, scenario)
        simulation.run()
        for service in simulation.services.values():
            assert [rac.config.rac_id for rac in service.racs] == ["1sp"]

    def test_event_past_horizon_is_deferred_not_applied(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=2, verify_signatures=False)
        link = topology.link_ids()[0]
        # Lands inside run()'s final in-flight flush window (horizon + 1 ms).
        scenario.at(2 * minutes(10) + 0.5).fail_link(link)
        simulation = BeaconingSimulation(topology, scenario)
        result = simulation.run()
        assert result.link_state.link_available(link)
        assert all("fail_link" not in line for line in result.convergence.trace)
        # Continuing the same simulation applies the deferred event at the
        # start of the next period instead of silently losing it.
        simulation.run(periods=1)
        assert not simulation.link_state.link_available(link)
        assert any("fail_link" in line for line in simulation.convergence.trace)

    def test_rac_swap_explicitly_targeting_legacy_as_raises(self):
        topology = line_topology(3)
        scenario = ScenarioConfig(
            algorithms=(one_shortest_path_spec(),),
            periods=2,
            verify_signatures=False,
            legacy_ases=(2,),
        )
        replacement = AlgorithmSpec(
            rac_id="2sp", factory=lambda: KShortestPathAlgorithm(k=2)
        )
        scenario.at(_mid_period(0)).swap_rac(replacement, replace_rac_id="1sp", as_ids=[2])
        simulation = BeaconingSimulation(topology, scenario)
        with pytest.raises(SimulationError):
            simulation.run()

    def test_churned_as_restarts_with_fresh_racs(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=4, verify_signatures=False)
        scenario.at(_mid_period(1)).as_leave(2).at(_mid_period(2)).as_join(2)
        simulation = BeaconingSimulation(topology, scenario)
        racs_before = list(simulation.services[2].racs)
        result = simulation.run()
        racs_after = simulation.services[2].racs
        # Cold restart: same deployment, freshly instantiated containers.
        assert [r.config.rac_id for r in racs_after] == [
            r.config.rac_id for r in racs_before
        ]
        assert all(
            after is not before for after, before in zip(racs_after, racs_before)
        )
        # The rejoined AS participates again: it re-registers paths.
        assert result.service(2).path_service.all_paths()

    def test_second_failure_deepens_open_disruption(self):
        # Diamond: two disjoint routes 1-2-4 and 1-3-4; losing one opens the
        # disruption, losing the other must deepen it (not vanish).
        from tests.test_fig8b_failures import diamond_topology

        topology = diamond_topology()
        scenario = don_scenario(periods=5, verify_signatures=False)
        # Both failures inside one period: no probe (and so no possible
        # recovery) in between, so the second must deepen the open record.
        scenario.at(_mid_period(2)).fail_link(((1, 1), (2, 1)))
        scenario.at(_mid_period(2) + 10_000.0).fail_link(((1, 2), (3, 1)))
        simulation = BeaconingSimulation(topology, scenario)
        simulation.watch_pair(4, 1)
        result = simulation.run()
        records = result.convergence.records
        assert len(records) == 1
        record = records[0]
        assert record.paths_after == 0  # low-water mark reflects both losses
        assert not record.recovered
        assert any("deepen (4,1)" in line for line in result.convergence.trace)


class TestRandomGenerators:
    def test_random_link_failures_are_reproducible(self):
        topology = line_topology(4)
        events_a = random_link_failures(
            topology, count=2, rng=random.Random(42), start_ms=10.0,
            spacing_ms=5.0, recovery_after_ms=100.0,
        )
        events_b = random_link_failures(
            topology, count=2, rng=random.Random(42), start_ms=10.0,
            spacing_ms=5.0, recovery_after_ms=100.0,
        )
        assert [t.trace_label() for t in events_a] == [t.trace_label() for t in events_b]
        assert len(events_a) == 4  # two failures + two recoveries
        kinds = [type(t.event) for t in events_a]
        assert kinds.count(LinkFailure) == 2 and kinds.count(LinkRecovery) == 2

    def test_random_churn_restricts_to_candidates(self):
        topology = line_topology(4)
        events = random_churn(
            topology, count=1, rng=random.Random(7), start_ms=0.0,
            spacing_ms=1.0, downtime_ms=50.0, candidates=[4],
        )
        assert [type(t.event) for t in events] == [ASLeave, ASJoin]
        assert all(t.event.as_id == 4 for t in events)

    def test_generated_events_run_in_engine(self):
        topology = line_topology(4)
        scenario = don_scenario(periods=3, verify_signatures=False)
        scenario.timeline.extend(
            random_link_failures(
                topology, count=1, rng=random.Random(3),
                start_ms=_mid_period(1), spacing_ms=minutes(10),
                recovery_after_ms=minutes(10),
            )
        )
        result = BeaconingSimulation(topology, scenario).run()
        assert result.periods_run == 3
