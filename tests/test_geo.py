"""Tests for geographic primitives."""

import pytest

from repro.topology import geo


class TestGeoCoordinate:
    def test_valid_coordinate(self):
        point = geo.GeoCoordinate(47.37, 8.54)
        assert point.latitude == 47.37

    def test_invalid_latitude(self):
        with pytest.raises(ValueError):
            geo.GeoCoordinate(91.0, 0.0)

    def test_invalid_longitude(self):
        with pytest.raises(ValueError):
            geo.GeoCoordinate(0.0, -181.0)

    def test_distance_and_delay_methods(self):
        zurich = geo.GeoCoordinate(47.3769, 8.5417)
        london = geo.GeoCoordinate(51.5074, -0.1278)
        assert zurich.distance_km(london) == pytest.approx(776, rel=0.05)
        assert zurich.delay_ms(london) > 0.0


class TestGreatCircle:
    def test_zero_distance(self):
        point = geo.GeoCoordinate(10.0, 20.0)
        assert geo.great_circle_km(point, point) == 0.0

    def test_symmetry(self):
        a = geo.GeoCoordinate(40.7, -74.0)
        b = geo.GeoCoordinate(35.6, 139.6)
        assert geo.great_circle_km(a, b) == pytest.approx(geo.great_circle_km(b, a))

    def test_new_york_to_london(self):
        new_york = geo.GeoCoordinate(40.7128, -74.0060)
        london = geo.GeoCoordinate(51.5074, -0.1278)
        assert geo.great_circle_km(new_york, london) == pytest.approx(5570, rel=0.02)

    def test_antipodal_distance_near_half_circumference(self):
        a = geo.GeoCoordinate(0.0, 0.0)
        b = geo.GeoCoordinate(0.0, 180.0)
        assert geo.great_circle_km(a, b) == pytest.approx(3.14159 * geo.EARTH_RADIUS_KM, rel=0.01)

    def test_delay_proportional_to_distance(self):
        a = geo.GeoCoordinate(0.0, 0.0)
        b = geo.GeoCoordinate(0.0, 10.0)
        c = geo.GeoCoordinate(0.0, 20.0)
        assert geo.propagation_delay_ms(a, c) == pytest.approx(
            2 * geo.propagation_delay_ms(a, b), rel=0.01
        )


class TestCentroidAndClustering:
    def test_centroid_of_single_point(self):
        point = geo.GeoCoordinate(10.0, 20.0)
        assert geo.centroid([point]) == point

    def test_centroid_average(self):
        a = geo.GeoCoordinate(0.0, 0.0)
        b = geo.GeoCoordinate(10.0, 20.0)
        mid = geo.centroid([a, b])
        assert mid.latitude == pytest.approx(5.0)
        assert mid.longitude == pytest.approx(10.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            geo.centroid([])

    def test_clustering_groups_nearby_points(self):
        zurich = geo.GeoCoordinate(47.3769, 8.5417)
        zurich_airport = geo.GeoCoordinate(47.4582, 8.5555)
        tokyo = geo.GeoCoordinate(35.6762, 139.6503)
        clusters = geo.cluster_by_distance(
            [("a", zurich), ("b", zurich_airport), ("c", tokyo)], radius_km=50.0
        )
        assert ["a", "b"] in clusters
        assert ["c"] in clusters

    def test_clustering_zero_radius_separates_distinct_points(self):
        a = geo.GeoCoordinate(0.0, 0.0)
        b = geo.GeoCoordinate(1.0, 1.0)
        clusters = geo.cluster_by_distance([("a", a), ("b", b)], radius_km=0.0)
        assert len(clusters) == 2

    def test_clustering_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            geo.cluster_by_distance([], radius_km=-1.0)


class TestCatalogue:
    def test_world_cities_have_valid_coordinates(self):
        for _name, coord in geo.WORLD_CITIES:
            assert -90 <= coord.latitude <= 90
            assert -180 <= coord.longitude <= 180

    def test_city_coordinates_list(self):
        assert len(geo.city_coordinates()) == len(geo.WORLD_CITIES)

    def test_bounding_delay_positive(self):
        coords = geo.city_coordinates()[:5]
        assert geo.bounding_delay_ms(coords) > 0.0

    def test_bounding_delay_empty(self):
        assert geo.bounding_delay_ms([]) == 0.0
