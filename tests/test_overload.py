"""Bounded, rate-limited control-plane inboxes (PR 6).

Covers the tentpole queue model end to end:

* equivalence — the unlimited default (and any profile that keeps an
  infinite service rate and unbounded queue) is bit-identical to the
  PR-5 fabric, both on a hypothesis-driven dynamic scenario and on the
  pinned golden trace;
* pinned behaviours — tail-drop ordering, ECN-style marking, priority
  preemption of revocations over queued PCBs, deferred ``applied_at``
  timestamps under a synthetic revocation storm;
* overload scenarios — revocation storms, beacon-flood DoS, slow-AS
  stragglers via :class:`ServiceRateChange` timeline events;
* validation — timeline and profile rejection of nonsensical inputs.
"""

import hashlib
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import RevocationMessage
from repro.exceptions import ConfigurationError
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.engine import EventScheduler
from repro.simulation.events import (
    BeaconFlood,
    ServiceRateChange,
    beacon_flood_dos,
    random_link_failures,
    revocation_storm,
    slow_as_stragglers,
)
from repro.simulation.network import InboxProfile, SimulatedTransport
from repro.simulation.scenario import don_scenario
from repro.units import minutes

from tests.conftest import line_topology, make_beacon
from tests.test_golden_trace import GOLDEN_DIGEST
from tests.test_message_fabric import _fabric_state, build_simulated_services


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _run_dynamic(profile, link_index, fail_minute, recover):
    """Run the fabric-equivalence dynamic scenario under ``profile``."""
    topology = line_topology(4)
    scenario = don_scenario(periods=4, verify_signatures=False)
    scenario.inbox_profile = profile
    link = topology.link_ids()[link_index]
    fail_at = float(fail_minute) * 60_000.0
    scenario.at(fail_at).fail_link(link)
    if recover:
        scenario.at(fail_at + minutes(10)).recover_link(link)
    simulation = BeaconingSimulation(topology, scenario)
    result = simulation.run()
    counters = (
        result.collector.total_sent,
        result.collector.total_dropped,
        result.collector.total_revocations,
        result.collector.revocations_dropped,
        result.collector.control_messages_total(),
        result.collector.inbox_dropped_total(),
        result.collector.inbox_marked_total(),
        result.collector.inbox_deferred_total(),
    )
    return _fabric_state(result), counters


def _golden_digest(profile):
    """Run the golden scenario of tests.test_golden_trace under ``profile``."""
    topology = line_topology(5)
    scenario = don_scenario(periods=11, verify_signatures=False)
    scenario.inbox_profile = profile

    core_link = topology.link_ids()[1]
    scenario.at(minutes(25)).fail_link(core_link)
    scenario.at(minutes(45)).recover_link(core_link)
    scenario.at(minutes(55)).as_leave(4).at(minutes(65)).as_join(4)
    scenario.timeline.extend(
        random_link_failures(
            topology,
            count=1,
            rng=random.Random(1234),
            start_ms=minutes(15),
            spacing_ms=minutes(10),
            recovery_after_ms=minutes(10),
        )
    )

    simulation = BeaconingSimulation(topology, scenario)
    simulation.watch_pair(3, 1)
    simulation.watch_pair(5, 1)
    result = simulation.run()

    summary = (
        f"sent={result.collector.total_sent}"
        f" dropped={result.collector.total_dropped}"
        f" revocations={result.collector.total_revocations}"
        f" periods={result.periods_run}"
        f" final={result.final_time_ms:.3f}"
        f" records={len(result.convergence.records)}"
    )
    record_lines = [record.trace_label() for record in result.convergence.records]
    trace = "\n".join([result.convergence.trace_text(), *record_lines, summary])
    return hashlib.sha256(trace.encode("utf-8")).hexdigest()


def _revocation(topology, sequence):
    """A distinct unsigned revocation of the 2-3 link (signatures off)."""
    return RevocationMessage(
        origin_as=1,
        sequence=sequence,
        created_at_ms=0.0,
        failed_link=topology.link_ids()[1],
    )


# ----------------------------------------------------------------------
# tentpole invariant: unlimited == PR-5, bit for bit
# ----------------------------------------------------------------------
class TestUnlimitedEquivalence:
    """An infinite budget + unbounded queue must reproduce PR-5 exactly."""

    @settings(max_examples=6, deadline=None)
    @given(
        link_index=st.integers(min_value=0, max_value=2),
        fail_minute=st.integers(min_value=3, max_value=35),
        profile=st.sampled_from(
            [InboxProfile(), InboxProfile(capacity=100_000, overflow_policy="mark")]
        ),
    )
    def test_unlimited_profiles_bit_identical(self, link_index, fail_minute, profile):
        baseline = _run_dynamic(None, link_index, fail_minute, True)
        assert _run_dynamic(profile, link_index, fail_minute, True) == baseline

    def test_default_profile_reports_no_overload(self):
        _state, counters = _run_dynamic(None, 1, 15, True)
        assert counters[-3:] == (0, 0, 0)  # no drops, marks or deferrals

    def test_golden_trace_unchanged_under_unlimited_profile(self):
        assert _golden_digest(InboxProfile()) == GOLDEN_DIGEST

    def test_golden_trace_unchanged_under_huge_capacity(self):
        assert _golden_digest(InboxProfile(capacity=1_000_000)) == GOLDEN_DIGEST


# ----------------------------------------------------------------------
# pinned: bounded-capacity overflow behaviour
# ----------------------------------------------------------------------
class TestBoundedCapacity:
    def test_tail_drop_keeps_earliest_arrivals(self, key_store):
        """A full ``drop`` inbox tail-drops the *arriving* message."""
        topology = line_topology(3)
        scheduler, transport, services = build_simulated_services(
            topology, key_store, inbox_profiles={2: InboxProfile(capacity=2)}
        )
        for sequence in (1, 2, 3, 4):
            transport.send_message(1, 2, _revocation(topology, sequence))
        scheduler.run_until(100.0)
        # The first two arrivals were queued and applied; the last two hit
        # the full queue and were dropped before their handlers ever ran.
        assert set(services[2].revocations.applied_at) == {(1, 1), (1, 2)}
        assert transport.collector.inbox_dropped["revocation"] == 2
        assert transport.collector.inbox_marked_total() == 0
        assert transport.collector.queue_high_water(2) == 2

    def test_mark_mode_delivers_and_counts(self, key_store):
        """``mark`` overflow delivers every message but stamps the surplus."""
        topology = line_topology(3)
        scheduler, transport, services = build_simulated_services(
            topology,
            key_store,
            inbox_profiles={2: InboxProfile(capacity=2, overflow_policy="mark")},
        )
        for sequence in (1, 2, 3, 4):
            transport.send_message(1, 2, _revocation(topology, sequence))
        scheduler.run_until(100.0)
        assert set(services[2].revocations.applied_at) == {
            (1, 1), (1, 2), (1, 3), (1, 4)
        }
        assert transport.collector.inbox_marked["revocation"] == 2
        assert transport.collector.inbox_dropped_total() == 0

    def test_congestion_mark_preserves_identity(self):
        message = _revocation(line_topology(3), 7)
        marked = message.with_congestion_mark()
        assert marked.congestion_marked and not message.congestion_marked
        assert marked.key == message.key
        assert marked.trace_label() == message.trace_label()


# ----------------------------------------------------------------------
# pinned: service-rate budget, priority and deferral
# ----------------------------------------------------------------------
class TestServiceBudget:
    def test_revocation_preempts_queued_pcb(self, key_store):
        """With pending > budget, revocations are serviced before PCBs."""
        topology = line_topology(3)
        scheduler, transport, services = build_simulated_services(
            topology,
            key_store,
            inbox_profiles={
                2: InboxProfile(budget_per_tick=1, service_interval_ms=5.0)
            },
        )
        beacon = make_beacon(key_store, [(1, None, 2)])
        transport.send_beacon(1, 2, beacon)  # arrives first ...
        transport.send_message(1, 2, _revocation(topology, 1))  # ... same tick
        scheduler.run_until(11.0)  # 10 ms link + 1 ms processing
        # The revocation jumped the queue: applied at the arrival tick
        # while the earlier-queued beacon is still deferred.
        assert services[2].revocations.applied_at == {(1, 1): 11.0}
        assert len(services[2].ingress.database) == 0
        scheduler.run_until(16.0)  # one service interval later
        assert len(services[2].ingress.database) == 1
        assert transport.collector.inbox_deferred["pcb"] == 1
        assert "revocation" not in transport.collector.inbox_deferred

    def test_deferred_service_pays_queueing_delay(self, key_store):
        topology = line_topology(3)
        scheduler, transport, services = build_simulated_services(
            topology,
            key_store,
            inbox_profiles={
                2: InboxProfile(budget_per_tick=1, service_interval_ms=5.0)
            },
        )
        for sequence in (1, 2, 3):
            transport.send_message(1, 2, _revocation(topology, sequence))
        scheduler.run_until(100.0)
        applied = services[2].revocations.applied_at
        # One revocation per 5 ms service round, in arrival order.
        assert applied == {(1, 1): 11.0, (1, 2): 16.0, (1, 3): 21.0}
        stats = transport.collector.queue_delay_stats()
        assert stats["count"] == 2
        assert stats["max"] == pytest.approx(10.0)
        assert transport.collector.queue_high_water(2) == 3

    def test_configure_inbox_hot_swap_drains_backlog(self, key_store):
        topology = line_topology(3)
        scheduler, transport, services = build_simulated_services(topology, key_store)
        transport.configure_inbox(
            2, InboxProfile(budget_per_tick=1, service_interval_ms=50.0)
        )
        for sequence in (1, 2, 3, 4):
            transport.send_message(1, 2, _revocation(topology, sequence))
        scheduler.run_until(11.0)
        assert len(services[2].revocations.applied_at) == 1
        assert transport.pending_messages(2) == 3
        assert transport.queue_backlog_ms(2) == pytest.approx(150.0)
        # Restoring the unlimited rate promptly drains the whole backlog.
        transport.set_inbox_budget(2, None)
        scheduler.run_until(12.0)
        assert len(services[2].revocations.applied_at) == 4
        assert transport.pending_messages(2) == 0
        assert transport.queue_backlog_ms(2) == 0.0

    def test_finite_budget_rejects_immediate_delivery(self, key_store):
        topology = line_topology(3)
        with pytest.raises(ConfigurationError):
            SimulatedTransport(
                topology=topology,
                scheduler=EventScheduler(),
                deliver_immediately=True,
                inbox_profile=InboxProfile(budget_per_tick=1),
            )


# ----------------------------------------------------------------------
# overload scenarios on the full simulation driver
# ----------------------------------------------------------------------
def _run_storm(budget):
    """Run the pinned revocation-storm scenario under a uniform budget."""
    topology = line_topology(6)
    scenario = don_scenario(periods=8, verify_signatures=False)
    if budget is not None:
        scenario.inbox_profile = InboxProfile(
            budget_per_tick=budget, service_interval_ms=5.0
        )
    scenario.timeline.extend(
        revocation_storm(
            topology,
            count=3,
            rng=random.Random(7),
            at_ms=minutes(25),
            recovery_after_ms=minutes(20),
        )
    )
    simulation = BeaconingSimulation(topology, scenario)
    result = simulation.run()
    applied = {
        as_id: dict(service.revocations.applied_at)
        for as_id, service in result.services.items()
    }
    return result, applied


def _run_cross_storm(budget):
    """Two simultaneous failures whose floods collide at the middle AS.

    Links 1-2 and 4-5 of a six-AS line fail in the same tick, so AS 3
    receives one revocation from each side at the same arrival tick —
    with ``budget_per_tick=1`` one of them *must* queue behind the other
    even though revocations preempt PCBs.
    """
    topology = line_topology(6)
    scenario = don_scenario(periods=8, verify_signatures=False)
    if budget is not None:
        scenario.inbox_profile = InboxProfile(
            budget_per_tick=budget, service_interval_ms=5.0
        )
    link_a, link_b = topology.link_ids()[0], topology.link_ids()[3]
    scenario.at(minutes(25)).fail_link(link_a).fail_link(link_b)
    scenario.at(minutes(45)).recover_link(link_a).recover_link(link_b)
    simulation = BeaconingSimulation(topology, scenario)
    result = simulation.run()
    applied = {
        as_id: dict(service.revocations.applied_at)
        for as_id, service in result.services.items()
    }
    return result, applied


class TestRevocationStorm:
    def test_storm_defers_withdrawals_load_dependently(self):
        unlimited, applied_unlimited = _run_cross_storm(None)
        squeezed, applied_squeezed = _run_cross_storm(1)
        relaxed, applied_relaxed = _run_cross_storm(4)

        assert unlimited.collector.inbox_deferred_total() == 0
        assert squeezed.collector.inbox_deferred_total() > 0

        def total_delay(applied):
            """Sum of withdrawal delays over keys every run observed."""
            delay = 0.0
            for as_id, baseline in applied_unlimited.items():
                for key, at_ms in baseline.items():
                    if key in applied[as_id]:
                        delay += applied[as_id][key] - at_ms
            return delay

        # Queueing never makes a withdrawal *earlier* than the unlimited
        # run, and strictly delays at least one; quadrupling the service
        # budget strictly reduces the total queueing delay.
        for as_id, baseline in applied_unlimited.items():
            for key, at_ms in baseline.items():
                if key in applied_squeezed[as_id]:
                    assert applied_squeezed[as_id][key] >= at_ms
        assert total_delay(applied_squeezed) > total_delay(applied_relaxed) >= 0.0

    def test_storm_surfaces_queue_metrics(self):
        squeezed, _applied = _run_storm(1)
        collector = squeezed.collector
        stats = collector.queue_delay_stats()
        assert stats["count"] > 0
        assert stats["p99"] >= stats["p50"] > 0.0
        assert max(collector.queue_high_water_marks().values()) > 1
        assert any(
            "overload" in line for line in squeezed.convergence.trace_text().splitlines()
        )

    def test_storm_aggregates_same_tick_failures(self):
        """Satellite: simultaneous failures batch into one message per origin."""
        topology = line_topology(4)
        scenario = don_scenario(periods=4, verify_signatures=False)
        link_a, link_b = topology.link_ids()[0], topology.link_ids()[1]
        scenario.at(minutes(15)).fail_link(link_a).fail_link(link_b)
        simulation = BeaconingSimulation(topology, scenario)

        captured = []
        original = simulation.services[2].originate_revocation

        def spy(**kwargs):
            captured.append(kwargs)
            return original(**kwargs)

        simulation.services[2].originate_revocation = spy
        result = simulation.run()

        # AS 2 borders both failed links yet originated a single batched
        # revocation naming them both.
        assert len(captured) == 1
        assert set(captured[0]["failed_links"]) == {link_a, link_b}
        assert result.services[2].revocations.originated == 1
        assert result.services[1].revocations.originated == 1
        assert result.services[3].revocations.originated == 1


class TestBeaconFloodDoS:
    def test_flood_inflates_traffic_and_overflows_bounded_inbox(self):
        def run(flood, profile):
            topology = line_topology(4)
            scenario = don_scenario(periods=6, verify_signatures=False)
            if profile is not None:
                scenario.inbox_profiles = {2: profile}
            if flood:
                scenario.timeline.extend(
                    beacon_flood_dos(attacker_as=1, start_ms=minutes(12), bursts=8)
                )
            return BeaconingSimulation(topology, scenario).run()

        quiet = run(flood=False, profile=None)
        flooded = run(flood=True, profile=None)
        assert flooded.collector.total_sent > quiet.collector.total_sent

        bounded = run(flood=True, profile=InboxProfile(capacity=4))
        assert bounded.collector.inbox_dropped["pcb"] > 0

    def test_flood_from_offline_attacker_is_inert(self):
        topology = line_topology(4)
        scenario = don_scenario(periods=4, verify_signatures=False)
        scenario.at(minutes(12)).as_leave(1)
        scenario.timeline.extend(
            beacon_flood_dos(attacker_as=1, start_ms=minutes(15), bursts=8)
        )
        result = BeaconingSimulation(topology, scenario).run()
        assert result.collector.inbox_dropped_total() == 0


class TestSlowAsStragglers:
    def test_straggler_defers_then_catches_up(self):
        topology = line_topology(4)
        scenario = don_scenario(periods=8, verify_signatures=False)
        scenario.timeline.extend(
            slow_as_stragglers(
                [3], budget_per_tick=1, start_ms=minutes(12), duration_ms=minutes(20)
            )
        )
        simulation = BeaconingSimulation(topology, scenario)
        result = simulation.run()
        collector = result.collector
        assert collector.inbox_deferred_total() > 0
        assert collector.queue_high_water(3) > 1
        # The budget was restored mid-run: the backlog fully drained and
        # the straggler still converged on a beacon database.
        assert simulation.transport.pending_messages(3) == 0
        assert len(result.services[3].ingress.database) > 0


# ----------------------------------------------------------------------
# satellite: negative caching of revoked elements
# ----------------------------------------------------------------------
class TestNegativeCache:
    def test_beacon_over_revoked_link_bounces_revocation(self, key_store):
        topology = line_topology(3)
        scheduler, transport, services = build_simulated_services(topology, key_store)
        revoked = topology.link_ids()[0]  # the 1-2 link
        # AS 2 revokes its 1-2 link; the flood reaches AS 3 and populates
        # its negative cache.
        services[2].originate_revocation(now_ms=0.0, failed_link=revoked)
        scheduler.run_until(20.0)
        assert revoked in services[3].revocations.revoked_links
        duplicates_before = services[2].revocations.duplicates

        # A stale beacon crossing the revoked link arrives at AS 3.
        beacon = make_beacon(key_store, [(1, None, 2), (2, 1, 2)])
        transport.send_beacon(2, 2, beacon)
        scheduler.run_until(60.0)
        # AS 3 refused it and bounced the cached revocation to the sender,
        # which deduplicates it (it already processed that revocation).
        assert services[3].revocations.reoriginated == 1
        assert len(services[3].ingress.database) == 0
        assert services[2].revocations.duplicates > duplicates_before

    def test_cache_cleared_on_recovery_admits_beacons(self, key_store):
        topology = line_topology(3)
        scheduler, transport, services = build_simulated_services(topology, key_store)
        revoked = topology.link_ids()[0]
        services[2].originate_revocation(now_ms=0.0, failed_link=revoked)
        scheduler.run_until(20.0)
        assert revoked in services[3].revocations.revoked_links

        # The element recovered (the driver clears caches network-wide).
        services[3].revocations.clear_revoked_link(revoked)
        beacon = make_beacon(key_store, [(1, None, 2), (2, 1, 2)])
        transport.send_beacon(2, 2, beacon)
        scheduler.run_until(60.0)
        assert services[3].revocations.reoriginated == 0
        assert len(services[3].ingress.database) == 1


# ----------------------------------------------------------------------
# satellite: timeline / profile validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_service_rate_change_rejects_non_positive_budget(self):
        with pytest.raises(ConfigurationError):
            ServiceRateChange(budget_per_tick=0)
        with pytest.raises(ConfigurationError):
            ServiceRateChange(budget_per_tick=-3)

    def test_timeline_rejects_unknown_service_rate_target(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=2)
        scenario.at(minutes(5)).set_service_rate(1, as_ids=(99,))
        with pytest.raises(ConfigurationError, match="unknown AS"):
            scenario.timeline.validate(topology)
        scenario.timeline.validate()  # no topology: membership unchecked

    def test_timeline_rejects_unknown_flood_attacker(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=2)
        scenario.at(minutes(5)).flood_beacons(attacker_as=42)
        with pytest.raises(ConfigurationError):
            scenario.timeline.validate(topology)

    def test_flood_rejects_non_positive_bursts(self):
        with pytest.raises(ConfigurationError):
            BeaconFlood(attacker_as=1, bursts=0)

    def test_profile_rejects_nonsense(self):
        with pytest.raises(ConfigurationError):
            InboxProfile(budget_per_tick=0)
        with pytest.raises(ConfigurationError):
            InboxProfile(capacity=0)
        with pytest.raises(ConfigurationError):
            InboxProfile(overflow_policy="reject")
        with pytest.raises(ConfigurationError):
            InboxProfile(service_interval_ms=0.0)

    def test_simulation_rejects_unknown_inbox_profile_target(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=2)
        scenario.inbox_profiles = {99: InboxProfile(budget_per_tick=1)}
        with pytest.raises(ConfigurationError, match="unknown AS"):
            BeaconingSimulation(topology, scenario)


# ----------------------------------------------------------------------
# PR 10 satellite: per-kind budget-cost weights
# ----------------------------------------------------------------------
class TestKindCosts:
    """``InboxProfile.kind_costs`` weights the service budget per kind."""

    def test_all_one_costs_bit_identical_to_unweighted(self):
        """An explicit all-1 table is the exact unweighted budget path."""
        unweighted = InboxProfile(budget_per_tick=2, service_interval_ms=5.0)
        weighted = InboxProfile(
            budget_per_tick=2,
            service_interval_ms=5.0,
            kind_costs={"revocation": 1, "pcb": 1, "path_registration": 1},
        )
        assert _run_dynamic(unweighted, 1, 20, True) == _run_dynamic(
            weighted, 1, 20, True
        )

    def test_default_none_costs_keep_golden_digest(self):
        assert _golden_digest(InboxProfile(kind_costs=None)) == GOLDEN_DIGEST

    def test_expensive_kind_fits_fewer_per_round(self, key_store):
        """Cost-5 revocations against budget 5: one serviced per round,
        where the unweighted budget would take all three at once."""
        topology = line_topology(3)
        scheduler, transport, services = build_simulated_services(
            topology,
            key_store,
            inbox_profiles={
                2: InboxProfile(
                    budget_per_tick=5,
                    service_interval_ms=5.0,
                    kind_costs={"revocation": 5},
                )
            },
        )
        for sequence in (1, 2, 3):
            transport.send_message(1, 2, _revocation(topology, sequence))
        scheduler.run_until(100.0)
        assert services[2].revocations.applied_at == {
            (1, 1): 11.0, (1, 2): 16.0, (1, 3): 21.0
        }
        assert transport.collector.inbox_deferred["revocation"] == 2

    def test_progress_guarantee_when_cost_exceeds_budget(self, key_store):
        """A message dearer than the whole budget still gets serviced —
        one per round — instead of deadlocking the queue."""
        topology = line_topology(3)
        scheduler, transport, services = build_simulated_services(
            topology,
            key_store,
            inbox_profiles={
                2: InboxProfile(
                    budget_per_tick=2,
                    service_interval_ms=5.0,
                    kind_costs={"revocation": 10},
                )
            },
        )
        for sequence in (1, 2):
            transport.send_message(1, 2, _revocation(topology, sequence))
        scheduler.run_until(100.0)
        assert services[2].revocations.applied_at == {(1, 1): 11.0, (1, 2): 16.0}

    def test_priority_order_survives_weighting(self, key_store):
        """Revocations still preempt queued PCBs under weighted costs; an
        expensive PCB defers to the next round."""
        topology = line_topology(3)
        scheduler, transport, services = build_simulated_services(
            topology,
            key_store,
            inbox_profiles={
                2: InboxProfile(
                    budget_per_tick=2,
                    service_interval_ms=5.0,
                    kind_costs={"pcb": 2},
                )
            },
        )
        beacon = make_beacon(key_store, [(1, None, 2)])
        transport.send_beacon(1, 2, beacon)  # arrives first ...
        transport.send_message(1, 2, _revocation(topology, 1))  # ... same tick
        scheduler.run_until(11.0)
        # Revocation (cost 1) serviced at arrival; the cost-2 PCB would
        # overflow the round's remaining budget and waits.
        assert services[2].revocations.applied_at == {(1, 1): 11.0}
        assert len(services[2].ingress.database) == 0
        scheduler.run_until(16.0)
        assert len(services[2].ingress.database) == 1
        assert transport.collector.inbox_deferred["pcb"] == 1

    def test_unknown_kinds_cost_one_unit(self, key_store):
        """Kinds absent from the table keep the implicit cost of 1."""
        topology = line_topology(3)
        scheduler, transport, services = build_simulated_services(
            topology,
            key_store,
            inbox_profiles={
                2: InboxProfile(
                    budget_per_tick=3,
                    service_interval_ms=5.0,
                    kind_costs={"path_query": 3},
                )
            },
        )
        for sequence in (1, 2, 3):
            transport.send_message(1, 2, _revocation(topology, sequence))
        scheduler.run_until(11.0)
        # Revocations are not in the table: three cost-1 messages fit the
        # budget-3 round exactly.
        assert len(services[2].revocations.applied_at) == 3

    def test_profile_rejects_bad_costs(self):
        with pytest.raises(ConfigurationError):
            InboxProfile(kind_costs={"revocation": 0})
        with pytest.raises(ConfigurationError):
            InboxProfile(kind_costs={"revocation": -3})
        with pytest.raises(ConfigurationError):
            InboxProfile(kind_costs={"revocation": 1.5})

    def test_profile_freezes_cost_table(self):
        costs = {"revocation": 2}
        profile = InboxProfile(budget_per_tick=2, kind_costs=costs)
        costs["revocation"] = 99
        assert profile.kind_costs["revocation"] == 2

    def test_hot_swap_budget_preserves_cost_table(self, key_store):
        """``set_inbox_budget`` keeps the kind-cost table of the profile."""
        topology = line_topology(3)
        scheduler, transport, services = build_simulated_services(
            topology,
            key_store,
            inbox_profiles={
                2: InboxProfile(
                    budget_per_tick=5,
                    service_interval_ms=5.0,
                    kind_costs={"revocation": 5},
                )
            },
        )
        transport.set_inbox_budget(2, 5)
        for sequence in (1, 2):
            transport.send_message(1, 2, _revocation(topology, sequence))
        scheduler.run_until(100.0)
        # Still one cost-5 revocation per round after the budget swap.
        assert services[2].revocations.applied_at == {(1, 1): 11.0, (1, 2): 16.0}
