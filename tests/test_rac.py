"""Tests for routing algorithm containers (RACs)."""

import pytest

from repro.algorithms.registry import encode_builtin_payload, encode_criteria_payload
from repro.algorithms.shortest_path import KShortestPathAlgorithm
from repro.core.algorithm_registry import AlgorithmFetcher
from repro.core.criteria import widest_with_latency_bound
from repro.core.databases import IngressDatabase, StoredBeacon
from repro.core.extensions import ExtensionSet
from repro.core.ondemand import OnDemandAlgorithmManager
from repro.core.rac import RACConfig, RoutingAlgorithmContainer
from repro.crypto.hashing import algorithm_hash
from repro.exceptions import RACError

from tests.conftest import make_beacon


def zero_intra(_a, _b):
    return 0.0


def database_with(key_store, beacon_specs):
    """Insert beacons described as (hops, extensions) into a fresh DB."""
    database = IngressDatabase()
    for hops, extensions in beacon_specs:
        beacon = make_beacon(key_store, hops, extensions=extensions)
        database.insert(
            StoredBeacon(beacon=beacon, received_on_interface=1, received_at_ms=0.0)
        )
    return database


class TestRACConfig:
    def test_validation(self):
        with pytest.raises(RACError):
            RACConfig(rac_id="")
        with pytest.raises(RACError):
            RACConfig(rac_id="x", max_paths_per_interface=0)
        with pytest.raises(RACError):
            RACConfig(rac_id="x", registration_limit=-1)

    def test_static_rac_needs_algorithm(self):
        with pytest.raises(RACError):
            RoutingAlgorithmContainer(config=RACConfig(rac_id="x"))

    def test_on_demand_rac_needs_manager(self):
        with pytest.raises(RACError):
            RoutingAlgorithmContainer(config=RACConfig(rac_id="x", on_demand=True))


class TestStaticRAC:
    def test_processes_plain_buckets_only(self, key_store):
        database = database_with(
            key_store,
            [
                ([(1, None, 1), (2, 1, 2)], None),
                ([(5, None, 1), (2, 1, 2)], ExtensionSet().with_algorithm("a", "h")),
            ],
        )
        rac = RoutingAlgorithmContainer(
            config=RACConfig(rac_id="1sp"), algorithm=KShortestPathAlgorithm(k=1)
        )
        selections, report = rac.process(
            database=database, egress_interfaces=(9,), intra_latency_ms=zero_intra, local_as=100
        )
        assert report.buckets == 1  # the on-demand bucket is not for this RAC
        assert len(selections) == 1
        assert selections[0].criteria_tag == "1sp"
        assert selections[0].egress_interfaces == [9]

    def test_report_contains_timing_decomposition(self, key_store):
        database = database_with(key_store, [([(1, None, 1), (2, 1, 2)], None)])
        rac = RoutingAlgorithmContainer(
            config=RACConfig(rac_id="1sp"), algorithm=KShortestPathAlgorithm(k=1)
        )
        _selections, report = rac.process(
            database=database, egress_interfaces=(9,), intra_latency_ms=zero_intra, local_as=100
        )
        assert report.candidates == 1
        assert report.execution_ms >= 0.0
        assert report.ipc_ms >= 0.0
        assert report.total_ms == pytest.approx(
            report.setup_ms + report.ipc_ms + report.execution_ms
        )
        assert report.throughput_pcbs_per_second() >= 0.0

    def test_buckets_split_by_interface_group(self, key_store):
        database = database_with(
            key_store,
            [
                ([(1, None, 1), (2, 1, 2)], ExtensionSet().with_interface_group(0)),
                ([(1, None, 2), (2, 1, 3)], ExtensionSet().with_interface_group(1)),
            ],
        )
        grouped_rac = RoutingAlgorithmContainer(
            config=RACConfig(rac_id="grouped", use_interface_groups=True),
            algorithm=KShortestPathAlgorithm(k=1),
        )
        merged_rac = RoutingAlgorithmContainer(
            config=RACConfig(rac_id="merged", use_interface_groups=False),
            algorithm=KShortestPathAlgorithm(k=1),
        )
        _s, grouped_report = grouped_rac.process(
            database=database, egress_interfaces=(9,), intra_latency_ms=zero_intra, local_as=100
        )
        _s, merged_report = merged_rac.process(
            database=database, egress_interfaces=(9,), intra_latency_ms=zero_intra, local_as=100
        )
        assert grouped_report.buckets == 2
        assert merged_report.buckets == 1
        assert merged_report.candidates == 2

    def test_targets_skipped_when_disabled(self, key_store):
        database = database_with(
            key_store,
            [([(1, None, 1), (2, 1, 2)], ExtensionSet().with_target(100))],
        )
        no_pull = RoutingAlgorithmContainer(
            config=RACConfig(rac_id="no-pull", use_targets=False),
            algorithm=KShortestPathAlgorithm(k=1),
        )
        with_pull = RoutingAlgorithmContainer(
            config=RACConfig(rac_id="with-pull", use_targets=True),
            algorithm=KShortestPathAlgorithm(k=1),
        )
        _s, skipped = no_pull.process(
            database=database, egress_interfaces=(9,), intra_latency_ms=zero_intra, local_as=100
        )
        _s, processed = with_pull.process(
            database=database, egress_interfaces=(9,), intra_latency_ms=zero_intra, local_as=100
        )
        assert skipped.buckets == 0
        assert processed.buckets == 1

    def test_selection_merges_interfaces_per_beacon(self, key_store):
        database = database_with(key_store, [([(1, None, 1), (2, 1, 2)], None)])
        rac = RoutingAlgorithmContainer(
            config=RACConfig(rac_id="1sp"), algorithm=KShortestPathAlgorithm(k=1)
        )
        selections, _report = rac.process(
            database=database,
            egress_interfaces=(7, 8, 9),
            intra_latency_ms=zero_intra,
            local_as=100,
        )
        assert len(selections) == 1
        assert sorted(selections[0].egress_interfaces) == [7, 8, 9]


class TestOnDemandRAC:
    def _on_demand_rac(self, payloads, cache_enabled=True):
        def transport(origin_as, algorithm_id):
            return payloads[(origin_as, algorithm_id)]

        manager = OnDemandAlgorithmManager(
            fetcher=AlgorithmFetcher(transport=transport, cache_enabled=cache_enabled),
            cache_enabled=cache_enabled,
        )
        return RoutingAlgorithmContainer(
            config=RACConfig(rac_id="on-demand", on_demand=True), on_demand_manager=manager
        ), manager

    def test_fetches_verifies_and_executes(self, key_store):
        payload = encode_criteria_payload(widest_with_latency_bound(50.0))
        payloads = {(1, "widest50"): payload}
        extensions = ExtensionSet().with_algorithm("widest50", algorithm_hash(payload))
        database = database_with(
            key_store,
            [
                ([(1, None, 1), (2, 1, 2)], extensions),
                ([(1, None, 2), (3, 1, 2)], extensions),
            ],
        )
        rac, manager = self._on_demand_rac(payloads)
        selections, report = rac.process(
            database=database, egress_interfaces=(9,), intra_latency_ms=zero_intra, local_as=100
        )
        assert report.buckets == 1
        assert report.failed_buckets == 0
        assert len(selections) >= 1
        assert manager.cached_algorithm_count() == 1
        assert manager.fetcher.remote_fetch_count() == 1

    def test_hash_mismatch_fails_bucket(self, key_store):
        good_payload = encode_builtin_payload("1sp")
        tampered_payload = encode_builtin_payload("5sp")
        payloads = {(1, "algo"): tampered_payload}
        extensions = ExtensionSet().with_algorithm("algo", algorithm_hash(good_payload))
        database = database_with(key_store, [([(1, None, 1), (2, 1, 2)], extensions)])
        rac, _manager = self._on_demand_rac(payloads)
        selections, report = rac.process(
            database=database, egress_interfaces=(9,), intra_latency_ms=zero_intra, local_as=100
        )
        assert selections == []
        assert report.failed_buckets == 1

    def test_static_buckets_ignored(self, key_store):
        payloads = {}
        database = database_with(key_store, [([(1, None, 1), (2, 1, 2)], None)])
        rac, _manager = self._on_demand_rac(payloads)
        _selections, report = rac.process(
            database=database, egress_interfaces=(9,), intra_latency_ms=zero_intra, local_as=100
        )
        assert report.buckets == 0

    def test_cache_reused_across_rounds(self, key_store):
        payload = encode_builtin_payload("1sp")
        payloads = {(1, "algo"): payload}
        extensions = ExtensionSet().with_algorithm("algo", algorithm_hash(payload))
        database = database_with(key_store, [([(1, None, 1), (2, 1, 2)], extensions)])
        rac, manager = self._on_demand_rac(payloads)
        for _ in range(3):
            rac.process(
                database=database,
                egress_interfaces=(9,),
                intra_latency_ms=zero_intra,
                local_as=100,
            )
        assert manager.fetcher.remote_fetch_count() == 1
