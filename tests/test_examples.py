"""Smoke tests that execute the example applications end to end.

The examples are part of the public deliverable; these tests run their
``main()`` functions (the faster ones in full, the slower ones indirectly
through their building blocks) so that API drift breaks the build instead
of the documentation.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    """Import an example script as a module without executing ``main()``."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"examples_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExampleScripts:
    def test_examples_exist(self):
        expected = {
            "quickstart.py",
            "multi_criteria_paths.py",
            "on_demand_routing.py",
            "disjoint_paths.py",
            "failover_and_policies.py",
            "dynamic_failover.py",
            "traffic_failover.py",
        }
        present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert expected <= present

    def test_quickstart_runs(self, capsys):
        module = load_example("quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "Topology:" in output
        assert "Paths registered" in output
        assert "Lowest-latency choice" in output

    def test_multi_criteria_paths_runs(self, capsys):
        module = load_example("multi_criteria_paths.py")
        module.main()
        output = capsys.readouterr().out
        assert "VoIP" in output
        assert "Live video" in output
        # All three applications found a (different) path and none failed on
        # the data plane.
        assert "FAILED" not in output
        assert output.count("->") >= 3

    def test_multi_criteria_topology_builder(self):
        module = load_example("multi_criteria_paths.py")
        topology = module.build_figure1_topology()
        assert topology.num_ases == 6
        assert topology.num_links == 7
        assert topology.is_connected()

    def test_on_demand_routing_runs(self, capsys):
        module = load_example("on_demand_routing.py")
        module.main()
        output = capsys.readouterr().out
        assert "Pull-based, on-demand paths" in output
        assert "live-video-60ms" in output

    def test_dynamic_failover_runs(self, capsys):
        module = load_example("dynamic_failover.py")
        module.main()
        output = capsys.readouterr().out
        assert "Scripted timeline" in output
        assert "fail_link" in output and "as_leave" in output
        assert "time to recovery" in output
        # The scripted run ends fully recovered, deterministically.
        assert "Outage at the end of the run: 0 ms" in output

    @pytest.mark.slow
    def test_disjoint_paths_runs(self, capsys):
        module = load_example("disjoint_paths.py")
        module.main()
        output = capsys.readouterr().out
        assert "link-disjoint paths collected" in output
        assert "Tolerable link failures" in output
