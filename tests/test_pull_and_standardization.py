"""Tests for the pull-based disjointness orchestrator and the standardization model."""

import pytest

from repro.algorithms.shortest_path import KShortestPathAlgorithm
from repro.core.algebra import Accumulation, MetricDefinition, Objective
from repro.core.control_service import IrecControlService
from repro.core.local_view import LocalTopologyView
from repro.core.pull import PullBasedDisjointnessOrchestrator, PullState
from repro.core.standardization import (
    FeatureTier,
    STABLE_FEATURES,
    StandardizationRegistry,
)
from repro.core.transport import LoopbackTransport
from repro.exceptions import ConfigurationError
from repro.topology.entities import Relationship

from tests.conftest import build_topology


def diamond_topology():
    """Origin AS 1 and target AS 4 connected by two link-disjoint paths."""
    loc = (47.0, 8.0)
    interfaces = {
        1: {1: loc, 2: loc},
        2: {1: loc, 2: loc},
        3: {1: loc, 2: loc},
        4: {1: loc, 2: loc},
    }
    links = [
        ((1, 1), (2, 1), 5.0, 100.0, Relationship.PEER),
        ((2, 2), (4, 1), 5.0, 100.0, Relationship.PEER),
        ((1, 2), (3, 1), 5.0, 100.0, Relationship.PEER),
        ((3, 2), (4, 2), 5.0, 100.0, Relationship.PEER),
    ]
    return build_topology(interfaces, links)


def build_pull_deployment(key_store):
    topology = diamond_topology()
    transport = LoopbackTransport(topology=topology)
    services = {}
    for as_info in topology:
        view = LocalTopologyView.from_topology(topology, as_info.as_id)
        service = IrecControlService(view=view, key_store=key_store, transport=transport)
        service.add_static_rac(rac_id="1sp", algorithm=KShortestPathAlgorithm(k=1))
        service.add_on_demand_rac(rac_id="on-demand")
        services[as_info.as_id] = service
        transport.register(service)
    return topology, services


def run_rounds(services, rounds, start_ms=0.0):
    for index in range(rounds):
        now = start_ms + index * 1000.0
        for service in services.values():
            service.run_round(now_ms=now)


class TestPullOrchestrator:
    def test_validation(self, key_store):
        _topology, services = build_pull_deployment(key_store)
        with pytest.raises(ConfigurationError):
            PullBasedDisjointnessOrchestrator(service=services[1], target_as=1)
        with pytest.raises(ConfigurationError):
            PullBasedDisjointnessOrchestrator(service=services[1], target_as=4, desired_paths=0)

    def test_collects_link_disjoint_paths(self, key_store):
        _topology, services = build_pull_deployment(key_store)
        orchestrator = PullBasedDisjointnessOrchestrator(
            service=services[1], target_as=4, desired_paths=2
        )
        orchestrator.start(now_ms=0.0)
        assert orchestrator.state is PullState.WAITING
        for round_index in range(6):
            run_rounds(services, rounds=1, start_ms=round_index * 1000.0)
            orchestrator.advance(now_ms=(round_index + 1) * 1000.0)
            if orchestrator.state is PullState.DONE:
                break
        assert orchestrator.state is PullState.DONE
        assert orchestrator.disjoint_path_count() == 2
        # The two collected paths must not share any inter-domain link.
        first, second = orchestrator.collected
        assert set(first.links()).isdisjoint(set(second.links()))

    def test_seed_paths_count_towards_goal(self, key_store):
        _topology, services = build_pull_deployment(key_store)
        # Discover a seed path with a tiny pull run first.
        seeder = PullBasedDisjointnessOrchestrator(
            service=services[1], target_as=4, desired_paths=1
        )
        seeder.start(now_ms=0.0)
        run_rounds(services, rounds=2)
        seeder.advance(now_ms=2000.0)
        assert seeder.state is PullState.DONE
        seed = seeder.collected

        satisfied = PullBasedDisjointnessOrchestrator(
            service=services[1], target_as=4, desired_paths=1, seed_paths=seed
        )
        satisfied.start(now_ms=3000.0)
        assert satisfied.state is PullState.DONE
        assert satisfied.disjoint_path_count() == 1

    def test_each_iteration_publishes_new_algorithm(self, key_store):
        _topology, services = build_pull_deployment(key_store)
        orchestrator = PullBasedDisjointnessOrchestrator(
            service=services[1], target_as=4, desired_paths=2
        )
        orchestrator.start(now_ms=0.0)
        for round_index in range(6):
            run_rounds(services, rounds=1, start_ms=round_index * 1000.0)
            orchestrator.advance(now_ms=(round_index + 1) * 1000.0)
            if orchestrator.state is PullState.DONE:
                break
        published = services[1].repository.published_ids()
        assert len(published) == len(orchestrator.iterations)
        # Later iterations carry strictly larger avoid sets.
        sizes = [len(iteration.avoid_links) for iteration in orchestrator.iterations]
        assert sizes == sorted(sizes)

    def test_abort_iteration_starts_a_new_one(self, key_store):
        _topology, services = build_pull_deployment(key_store)
        orchestrator = PullBasedDisjointnessOrchestrator(
            service=services[1], target_as=4, desired_paths=2
        )
        orchestrator.start(now_ms=0.0)
        orchestrator.abort_iteration(now_ms=1.0)
        assert len(orchestrator.iterations) == 2

    def test_advance_without_results_keeps_waiting(self, key_store):
        _topology, services = build_pull_deployment(key_store)
        orchestrator = PullBasedDisjointnessOrchestrator(
            service=services[1], target_as=4, desired_paths=2
        )
        orchestrator.start(now_ms=0.0)
        assert orchestrator.advance(now_ms=1.0) is PullState.WAITING


class TestStandardization:
    def test_stable_features_present(self):
        registry = StandardizationRegistry()
        names = {feature.name for feature in registry.features()}
        assert {"pcb-format", "pcb-extensions", "rac-interface", "default-algorithm"} <= names
        assert all(feature.tier is FeatureTier.STABLE for feature in STABLE_FEATURES)

    def test_publish_metric_is_append_only(self):
        registry = StandardizationRegistry()
        jitter = MetricDefinition(
            name="jitter_ms", accumulation=Accumulation.ADDITIVE, objective=Objective.MINIMIZE
        )
        registry.publish_metric(jitter)
        registry.publish_metric(jitter)  # idempotent
        conflicting = MetricDefinition(
            name="jitter_ms", accumulation=Accumulation.BOTTLENECK, objective=Objective.MINIMIZE
        )
        with pytest.raises(ConfigurationError):
            registry.publish_metric(conflicting)
        assert registry.metric("jitter_ms") == jitter
        assert "jitter_ms" in registry.metrics()

    def test_beta_and_nightly_algorithms(self):
        registry = StandardizationRegistry()
        registry.publish_beta_algorithm("delay")
        registry.publish_beta_algorithm("delay")
        registry.record_nightly_algorithm("pd-1-4-0")
        assert registry.beta_algorithms() == ("delay",)
        assert registry.nightly_algorithms() == ("pd-1-4-0",)
        assert registry.tier_of("algorithm:delay") is FeatureTier.BETA
        assert registry.tier_of("algorithm:pd-1-4-0") is FeatureTier.NIGHTLY
        assert registry.tier_of("pcb-format") is FeatureTier.STABLE
        assert registry.tier_of("unknown") is None

    def test_default_algorithm_name(self):
        assert StandardizationRegistry().default_algorithm == "20sp"
