"""Tests for the analysis package: CDFs, workloads, micro-benchmarks, evaluations."""

import pytest

from repro.analysis.cdf import EmpiricalCDF, relative_to_baseline
from repro.analysis.delay_eval import evaluate_delay
from repro.analysis.disjointness_eval import (
    evaluate_disjointness,
    tolerable_link_failures,
)
from repro.analysis.microbench import (
    latency_series,
    measure_legacy_latency,
    measure_rac_latency,
    measure_throughput,
    throughput_series,
)
from repro.analysis.overhead_eval import evaluate_overhead
from repro.analysis.reporting import format_cdf_table, format_table
from repro.analysis.workloads import synthetic_candidate_set, synthetic_stored_beacons
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import disjointness_scenario, don_scenario
from repro.topology.generator import generate_topology, small_test_config


class TestEmpiricalCDF:
    def test_basic_statistics(self):
        cdf = EmpiricalCDF.from_samples([3.0, 1.0, 2.0, 4.0])
        assert cdf.sample_count == 4
        assert cdf.median == pytest.approx(2.5)
        assert cdf.mean == pytest.approx(2.5)
        assert cdf.probability_at_or_below(2.0) == 0.5
        assert cdf.probability_at_or_below(0.5) == 0.0
        assert cdf.probability_at_or_below(10.0) == 1.0
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 4.0

    def test_unsorted_construction_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF(values=(3.0, 1.0))

    def test_empty_cdf(self):
        cdf = EmpiricalCDF.from_samples([])
        assert cdf.probability_at_or_below(1.0) == 0.0
        assert cdf.points() == []
        with pytest.raises(ValueError):
            cdf.quantile(0.5)
        with pytest.raises(ValueError):
            _ = cdf.mean

    def test_quantile_bounds(self):
        cdf = EmpiricalCDF.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_points_downsampling(self):
        cdf = EmpiricalCDF.from_samples(range(1000))
        points = cdf.points(max_points=10)
        assert len(points) <= 10
        assert points[-1][1] == 1.0

    def test_relative_to_baseline(self):
        ratios = relative_to_baseline([2.0, None, 6.0, 4.0], [1.0, 2.0, 3.0, 0.0])
        assert ratios == [2.0, 2.0]


class TestWorkloads:
    def test_sizes_and_determinism(self):
        a = synthetic_candidate_set(16, seed=3)
        b = synthetic_candidate_set(16, seed=3)
        assert len(a) == 16
        assert [x.beacon.digest() for x in a] == [y.beacon.digest() for y in b]

    def test_unique_paths(self):
        candidates = synthetic_candidate_set(64)
        digests = {c.beacon.digest() for c in candidates}
        assert len(digests) == 64

    def test_all_same_origin(self):
        candidates = synthetic_candidate_set(8, origin_as=5)
        assert all(c.beacon.origin_as == 5 for c in candidates)

    def test_stored_variant(self):
        stored = synthetic_stored_beacons(4)
        assert all(s.received_on_interface == 1 for s in stored)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            synthetic_candidate_set(-1)


class TestMicrobench:
    def test_rac_latency_breakdown(self):
        breakdown = measure_rac_latency(32)
        assert breakdown.candidate_set_size == 32
        assert breakdown.setup_ms > 0.0
        assert breakdown.ipc_ms > 0.0
        assert breakdown.execution_ms > 0.0
        assert breakdown.irec_total_ms == pytest.approx(
            breakdown.setup_ms + breakdown.ipc_ms + breakdown.execution_ms
        )

    def test_legacy_latency_positive_and_smaller(self):
        legacy = measure_legacy_latency(32)
        irec = measure_rac_latency(32)
        assert legacy > 0.0
        assert irec.irec_total_ms > legacy

    def test_latency_series_shape(self):
        series = latency_series([8, 64])
        assert [point.candidate_set_size for point in series] == [8, 64]
        assert all(point.slowdown_vs_legacy is not None for point in series)
        assert all(point.slowdown_vs_legacy > 1.0 for point in series)
        # Execution time grows with the candidate set.  Wall-clock timing is
        # noisy on a loaded machine, so compare the best of three runs per
        # size instead of single measurements.
        best_small = min(measure_rac_latency(8, seed=s).execution_ms for s in (1, 2, 3))
        best_large = min(measure_rac_latency(256, seed=s).execution_ms for s in (1, 2, 3))
        assert best_large > best_small

    def test_throughput_scales_with_rac_count(self):
        one = measure_throughput(rac_count=1, candidate_set_size=64)
        four = measure_throughput(rac_count=4, candidate_set_size=64)
        assert one.pcbs_per_second > 0.0
        assert four.pcbs_per_second > 2.0 * one.pcbs_per_second

    def test_throughput_series_grid(self):
        series = throughput_series(rac_counts=[1, 2], candidate_set_sizes=[16, 64])
        assert len(series) == 4

    def test_invalid_rac_count(self):
        with pytest.raises(ValueError):
            measure_throughput(rac_count=0, candidate_set_size=16)


class TestTolerableLinkFailures:
    def test_empty_set(self):
        assert tolerable_link_failures([], 1, 2) == 0

    def test_single_path(self):
        path = [((1, 1), (2, 1)), ((2, 2), (3, 1))]
        assert tolerable_link_failures([path], 1, 3) == 1

    def test_two_disjoint_paths(self):
        path_a = [((1, 1), (2, 1)), ((2, 2), (4, 1))]
        path_b = [((1, 2), (3, 1)), ((3, 2), (4, 2))]
        assert tolerable_link_failures([path_a, path_b], 1, 4) == 2

    def test_shared_bottleneck_link(self):
        shared = ((1, 1), (2, 1))
        path_a = [shared, ((2, 2), (4, 1))]
        path_b = [shared, ((2, 3), (4, 2))]
        assert tolerable_link_failures([path_a, path_b], 1, 4) == 1

    def test_disconnected_paths(self):
        stray = [((5, 1), (6, 1))]
        assert tolerable_link_failures([stray], 1, 2) == 0


@pytest.fixture(scope="module")
def small_simulation_result():
    topology = generate_topology(small_test_config())
    scenario = don_scenario(periods=3, verify_signatures=False)
    return BeaconingSimulation(topology, scenario).run()


class TestSimulationEvaluations:
    def test_delay_evaluation(self, small_simulation_result):
        as_ids = small_simulation_result.topology.as_ids()
        pairs = [(as_ids[-1], as_ids[0]), (as_ids[-2], as_ids[1])]
        evaluation = evaluate_delay(
            small_simulation_result, tags=["5sp", "don"], baseline_tag="1sp", as_pairs=pairs
        )
        assert set(evaluation.tags()) == {"1sp", "5sp", "don"}
        assert evaluation.coverage("1sp") > 0.0
        cdf = evaluation.cdf_relative_to_baseline("don")
        assert cdf.sample_count > 0
        # Delay optimization can never be worse than the baseline by more
        # than a small margin on the pairs it covers, and its median ratio
        # must be at most 1.
        assert evaluation.median_ratio("don") <= 1.0 + 1e-9

    def test_disjointness_evaluation(self, small_simulation_result):
        as_ids = small_simulation_result.topology.as_ids()
        pairs = [(as_ids[-1], as_ids[0])]
        evaluation = evaluate_disjointness(
            small_simulation_result, tags=["1sp", "5sp"], as_pairs=pairs
        )
        assert evaluation.tlf["1sp"][0] >= 0
        assert evaluation.tlf["5sp"][0] >= evaluation.tlf["1sp"][0]
        assert 0.0 <= evaluation.fraction_at_least("5sp", 1) <= 1.0

    def test_overhead_evaluation(self, small_simulation_result):
        evaluation = evaluate_overhead([("don-run", small_simulation_result)])
        assert evaluation.labels() == ("don-run",)
        assert evaluation.total("don-run") == small_simulation_result.collector.total_sent
        assert evaluation.mean_per_interface_period("don-run") > 0.0
        assert evaluation.cdf("don-run").sample_count > 0

    def test_disjointness_with_extra_paths(self, key_store, small_simulation_result):
        from tests.conftest import make_beacon

        as_ids = small_simulation_result.topology.as_ids()
        source, destination = as_ids[-1], as_ids[0]
        extra_segment = make_beacon(
            key_store, [(destination, None, 90), (900, 1, 2), (source, 1, None)]
        )
        evaluation = evaluate_disjointness(
            small_simulation_result,
            tags=["pd"],
            as_pairs=[(source, destination)],
            extra_paths={(source, destination): {"pd": [extra_segment]}},
        )
        assert evaluation.tlf["pd"][0] >= 1


class TestReporting:
    def test_format_table(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 7]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in text
        assert len(lines) == 4

    def test_format_cdf_table(self):
        cdfs = {
            "x": EmpiricalCDF.from_samples([1.0, 2.0, 3.0]),
            "empty": EmpiricalCDF.from_samples([]),
        }
        text = format_cdf_table(cdfs)
        assert "x" in text
        assert "empty" in text
        assert "p50" in text
