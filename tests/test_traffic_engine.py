"""Tests for the flow-level traffic engine and its building blocks."""

import random

import pytest

from repro.core.databases import PathService, RegisteredPath
from repro.dataplane.endhost import EndHost
from repro.exceptions import ConfigurationError
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.scenario import don_scenario
from repro.simulation.failures import LinkState
from repro.topology.generator import TopologyConfig, generate_topology
from repro.traffic import (
    BandwidthAwarePolicy,
    CapacityLinkModel,
    ClosedLoopDemand,
    EcmpPolicy,
    FlowGroup,
    LatencyGreedyPolicy,
    PathLoad,
    TagPinnedPolicy,
    TrafficEngine,
    TrafficMatrix,
    gravity_matrix,
    hotspot_matrix,
    prefer_clean,
    random_matrix,
    uniform_matrix,
)
from repro.units import minutes

from tests.conftest import figure1_topology, make_beacon
from tests.test_examples import load_example

#: Pinned digest of the example scenario's traffic trace (see
#: ``examples/traffic_failover.py``); update it when engine behaviour
#: changes intentionally, like the control-plane golden trace.
#: PR 4: flow groups break on revocation *arrival* at their source AS
#: (cause = the revocation's trace label, timestamps propagation-ordered)
#: instead of instantly at the failure event, so every break line changed.
#: PR 6: same-timestamp failures aggregate into one multi-element
#: revocation per origin (the example cuts both victim links at once), so
#: break causes carry the batched ``revoke link A+link B`` label.
EXAMPLE_TRACE_DIGEST = "aaa47b230d7245ae4bb3fa75c753e2fc9c9fccd996a10c5bb0bf19f12e376465"


# ----------------------------------------------------------------------
# fixtures: the Figure-1 topology with its three 1 -> 3 paths
# ----------------------------------------------------------------------
@pytest.fixture
def fig1():
    return figure1_topology()


@pytest.fixture
def fig1_paths(key_store):
    """The three registered 1->3 paths of the Figure-1 topology."""
    short = make_beacon(
        key_store,
        [(3, None, 1), (2, 2, 1), (1, 1, None)],
        link_latencies=[10.0, 10.0, 0.0],
        link_bandwidths=[100.0, 100.0, None],
    )
    wide = make_beacon(
        key_store,
        [(3, None, 2), (6, 2, 1), (5, 2, 1), (4, 2, 1), (1, 2, None)],
        link_latencies=[10.0, 10.0, 10.0, 10.0, 0.0],
        link_bandwidths=[10_000.0, 10_000.0, 10_000.0, 10_000.0, None],
    )
    middle = make_beacon(
        key_store,
        [(3, None, 3), (5, 3, 1), (4, 2, 1), (1, 2, None)],
        link_latencies=[10.0, 10.0, 10.0, 0.0],
        link_bandwidths=[1_000.0, 10_000.0, 10_000.0, None],
    )
    return short, wide, middle


@pytest.fixture
def fig1_service(fig1_paths):
    service = PathService()
    for tag, segment in zip(("1sp", "hd", "don"), fig1_paths):
        assert service.register(
            RegisteredPath(segment=segment, criteria_tags=(tag,), registered_at_ms=0.0)
        )
    return service


# ----------------------------------------------------------------------
# demand models
# ----------------------------------------------------------------------
class TestDemand:
    def test_flow_group_validation(self):
        with pytest.raises(ConfigurationError):
            FlowGroup(group_id=0, source_as=1, destination_as=1, demand_mbps=1.0)
        with pytest.raises(ConfigurationError):
            FlowGroup(group_id=0, source_as=1, destination_as=2, demand_mbps=0.0)
        with pytest.raises(ConfigurationError):
            FlowGroup(group_id=0, source_as=1, destination_as=2, demand_mbps=1.0, flow_count=0)

    def test_uniform_conserves_totals(self, fig1):
        matrix = uniform_matrix(fig1, total_demand_mbps=600.0, total_flows=6_000)
        assert matrix.total_flows == 6_000
        assert matrix.total_demand_mbps == pytest.approx(600.0)
        demands = {group.demand_mbps for group in matrix}
        assert len(demands) == 1  # uniform means uniform

    def test_gravity_weighs_by_degree(self, fig1):
        matrix = gravity_matrix(fig1, total_demand_mbps=1_000.0, total_flows=10_000)
        assert matrix.total_demand_mbps == pytest.approx(1_000.0)
        assert matrix.total_flows == 10_000
        by_pair = {(g.source_as, g.destination_as): g.demand_mbps for g in matrix}
        # AS 5 (degree 3) attracts more than AS 6 (degree 2) from the same source.
        assert by_pair[(1, 5)] > by_pair[(1, 6)]

    def test_hotspot_redirects_fraction(self, fig1):
        matrix = hotspot_matrix(
            fig1, total_demand_mbps=1_000.0, total_flows=5_000,
            hotspot_as=3, hotspot_fraction=0.5,
        )
        assert matrix.total_demand_mbps == pytest.approx(1_000.0)
        towards_hotspot = sum(
            g.demand_mbps for g in matrix if g.destination_as == 3
        )
        assert towards_hotspot > 500.0  # spike plus the gravity base load

    def test_hotspot_full_fraction(self, fig1):
        matrix = hotspot_matrix(
            fig1, total_demand_mbps=100.0, total_flows=500,
            hotspot_as=3, hotspot_fraction=1.0,
        )
        assert matrix.total_demand_mbps == pytest.approx(100.0)
        assert all(group.destination_as == 3 for group in matrix)

    def test_random_matrix_is_seed_deterministic(self, fig1):
        one = random_matrix(fig1, pair_count=8, total_flows=800, rng=random.Random(5))
        two = random_matrix(fig1, pair_count=8, total_flows=800, rng=random.Random(5))
        assert one == two
        other = random_matrix(fig1, pair_count=8, total_flows=800, rng=random.Random(6))
        assert one != other

    def test_aggregation_needs_one_flow_per_pair(self, fig1):
        with pytest.raises(ConfigurationError):
            uniform_matrix(fig1, total_demand_mbps=10.0, total_flows=3)


# ----------------------------------------------------------------------
# capacity-aware link model
# ----------------------------------------------------------------------
class TestCapacityLinkModel:
    def test_unsaturated_demands_fully_carried(self, fig1):
        model = CapacityLinkModel(fig1)
        link = model.link_index(fig1.link_ids()[0])
        result = model.allocate(
            [PathLoad(key="a", link_indices=(link,), demand_mbps=10.0)]
        )
        assert result.carried_mbps["a"] == pytest.approx(10.0)
        assert result.lost_mbps == pytest.approx(0.0)

    def test_equal_shares_on_saturated_link(self, fig1):
        model = CapacityLinkModel(fig1)
        # Link (1,1)-(2,1) has 100 Mbit/s.
        link = model.link_index(((1, 1), (2, 1)))
        result = model.allocate(
            [
                PathLoad(key="a", link_indices=(link,), demand_mbps=100.0),
                PathLoad(key="b", link_indices=(link,), demand_mbps=100.0),
            ]
        )
        assert result.carried_mbps["a"] == pytest.approx(50.0)
        assert result.carried_mbps["b"] == pytest.approx(50.0)
        assert result.link_load_mbps[link] == pytest.approx(100.0)

    def test_weighted_max_min_shares(self, fig1):
        model = CapacityLinkModel(fig1)
        link = model.link_index(((1, 1), (2, 1)))
        result = model.allocate(
            [
                PathLoad(key="big", link_indices=(link,), demand_mbps=500.0, weight=3.0),
                PathLoad(key="small", link_indices=(link,), demand_mbps=500.0, weight=1.0),
            ]
        )
        assert result.carried_mbps["big"] == pytest.approx(75.0)
        assert result.carried_mbps["small"] == pytest.approx(25.0)

    def test_demand_capped_flow_releases_capacity(self, fig1):
        model = CapacityLinkModel(fig1)
        link = model.link_index(((1, 1), (2, 1)))
        result = model.allocate(
            [
                PathLoad(key="small", link_indices=(link,), demand_mbps=10.0),
                PathLoad(key="greedy", link_indices=(link,), demand_mbps=1_000.0),
            ]
        )
        # Max-min: the small demand is satisfied, the greedy one gets the rest.
        assert result.carried_mbps["small"] == pytest.approx(10.0)
        assert result.carried_mbps["greedy"] == pytest.approx(90.0)

    def test_multi_link_path_bottleneck(self, fig1):
        model = CapacityLinkModel(fig1)
        narrow = model.link_index(((1, 1), (2, 1)))  # 100 Mbit/s
        wide = model.link_index(((1, 2), (4, 1)))  # 10 000 Mbit/s
        result = model.allocate(
            [PathLoad(key="path", link_indices=(narrow, wide), demand_mbps=5_000.0)]
        )
        assert result.carried_mbps["path"] == pytest.approx(100.0)

    def test_capacity_scale(self, fig1):
        model = CapacityLinkModel(fig1, capacity_scale=0.5)
        link = model.link_index(((1, 1), (2, 1)))
        result = model.allocate(
            [PathLoad(key="a", link_indices=(link,), demand_mbps=100.0)]
        )
        assert result.carried_mbps["a"] == pytest.approx(50.0)

    def test_empty_and_zero_loads(self, fig1):
        model = CapacityLinkModel(fig1)
        assert model.allocate([]).total_carried_mbps == 0.0
        link = model.link_index(fig1.link_ids()[0])
        result = model.allocate(
            [PathLoad(key="z", link_indices=(link,), demand_mbps=5.0, weight=0.0)]
        )
        assert result.carried_mbps["z"] == 0.0


# ----------------------------------------------------------------------
# selection policies
# ----------------------------------------------------------------------
class TestSelectionPolicies:
    def test_latency_greedy(self, fig1_service):
        host = EndHost(host_id="h", as_id=1, path_service=fig1_service)
        selected = host.select_weighted(3, LatencyGreedyPolicy())
        assert len(selected) == 1
        path, weight = selected[0]
        assert path.segment.total_latency_ms() == pytest.approx(20.0)
        assert weight == pytest.approx(1.0)

    def test_bandwidth_aware(self, fig1_service):
        host = EndHost(host_id="h", as_id=1, path_service=fig1_service)
        [(path, _weight)] = host.select_weighted(3, BandwidthAwarePolicy())
        assert path.segment.bottleneck_bandwidth_mbps() == pytest.approx(10_000.0)

    def test_ecmp_splits_evenly(self, fig1_service):
        host = EndHost(host_id="h", as_id=1, path_service=fig1_service)
        selected = host.select_weighted(3, EcmpPolicy(max_paths=2))
        assert len(selected) == 2
        assert [weight for _path, weight in selected] == [0.5, 0.5]
        latencies = [path.segment.total_latency_ms() for path, _ in selected]
        assert latencies == sorted(latencies)  # best paths first

    def test_ecmp_bandwidth_weighted(self, fig1_service):
        host = EndHost(host_id="h", as_id=1, path_service=fig1_service)
        selected = host.select_weighted(
            3, EcmpPolicy(max_paths=3, prefer="bandwidth", weight_by_bandwidth=True)
        )
        weights = {
            path.segment.bottleneck_bandwidth_mbps(): weight for path, weight in selected
        }
        assert weights[10_000.0] > weights[1_000.0] > weights[100.0]
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_tag_pinning_and_fallback(self, fig1_service):
        host = EndHost(host_id="h", as_id=1, path_service=fig1_service)
        [(path, _)] = host.select_weighted(3, TagPinnedPolicy(tag="hd"))
        assert "hd" in path.criteria_tags
        assert host.select_weighted(3, TagPinnedPolicy(tag="nope")) == []
        [(fallback, _)] = host.select_weighted(
            3, TagPinnedPolicy(tag="nope", fallback=True)
        )
        assert fallback.segment.total_latency_ms() == pytest.approx(20.0)

    def test_policies_on_empty_candidates(self):
        for policy in (
            LatencyGreedyPolicy(),
            BandwidthAwarePolicy(),
            EcmpPolicy(max_paths=2),
            TagPinnedPolicy(tag="x", fallback=True),
        ):
            assert policy([]) == []

    def test_ecmp_validation(self):
        with pytest.raises(ConfigurationError):
            EcmpPolicy(max_paths=0)
        with pytest.raises(ConfigurationError):
            EcmpPolicy(prefer="hops")


# ----------------------------------------------------------------------
# the engine, standalone (hand-built path service)
# ----------------------------------------------------------------------
class TestTrafficEngineStandalone:
    def _engine(self, fig1, fig1_service, policy, demand=50.0, **kwargs):
        matrix = TrafficMatrix(
            groups=(
                FlowGroup(
                    group_id=0, source_as=1, destination_as=3,
                    demand_mbps=demand, flow_count=100,
                ),
            )
        )
        return TrafficEngine(
            topology=fig1,
            path_services={1: fig1_service},
            matrix=matrix,
            policy=policy,
            **kwargs,
        )

    def test_round_carries_demand(self, fig1, fig1_service):
        engine = self._engine(fig1, fig1_service, LatencyGreedyPolicy())
        collector = engine.run_rounds(3)
        assert engine.rounds_run == 3
        assert len(collector.samples) == 3
        sample = collector.samples[-1]
        assert sample.carried_mbps == pytest.approx(50.0)
        assert sample.flow_rounds == 100
        assert collector.total_flow_rounds == 300
        assert sample.mean_latency_ms == pytest.approx(20.0)

    def test_capacity_limits_goodput(self, fig1, fig1_service):
        # The latency-greedy path bottlenecks at 100 Mbit/s.
        engine = self._engine(fig1, fig1_service, LatencyGreedyPolicy(), demand=400.0)
        sample = engine.run_rounds(1).samples[0]
        assert sample.carried_mbps == pytest.approx(100.0)
        assert sample.lost_mbps == pytest.approx(300.0)
        assert sample.max_link_utilization == pytest.approx(1.0)

    def test_ecmp_uses_parallel_capacity(self, fig1, fig1_service):
        engine = self._engine(fig1, fig1_service, EcmpPolicy(max_paths=2), demand=400.0)
        sample = engine.run_rounds(1).samples[0]
        # Half the demand fits the wide path, half saturates the narrow one.
        assert sample.carried_mbps == pytest.approx(300.0)

    def test_unserved_without_paths(self, fig1, fig1_service):
        matrix = TrafficMatrix(
            groups=(
                FlowGroup(group_id=0, source_as=1, destination_as=6, demand_mbps=10.0),
            )
        )
        engine = TrafficEngine(
            topology=fig1, path_services={1: fig1_service}, matrix=matrix
        )
        sample = engine.run_rounds(1).samples[0]
        assert sample.blackholed_groups == 1
        assert sample.unserved_mbps == pytest.approx(10.0)
        assert sample.carried_mbps == pytest.approx(0.0)

    def test_failed_link_triggers_reselection(self, fig1, fig1_service):
        engine = self._engine(fig1, fig1_service, LatencyGreedyPolicy())
        engine.run_rounds(1)
        assert engine.collector.samples[0].mean_latency_ms == pytest.approx(20.0)
        # Fail the 1-2 link: the next round must move to the 30 ms path.
        engine.link_state.fail_link(((1, 1), (2, 1)))
        engine.run_rounds(1)
        assert engine.collector.samples[1].mean_latency_ms == pytest.approx(30.0)
        assert engine.collector.samples[1].carried_mbps == pytest.approx(50.0)

    def test_withdrawn_path_triggers_reselection(self, fig1, fig1_service):
        engine = self._engine(fig1, fig1_service, LatencyGreedyPolicy())
        engine.run_rounds(1)
        fig1_service.remove_matching(
            lambda path: path.segment.total_latency_ms() == pytest.approx(20.0)
        )
        engine.run_rounds(1)
        assert engine.collector.samples[1].mean_latency_ms == pytest.approx(30.0)

    def test_per_flow_latency_includes_queueing_delay(self, fig1, fig1_service):
        """PR 6: per-flow latency = path latency + source-AS inbox backlog."""
        backlogs = {1: 7.5}
        engine = self._engine(
            fig1, fig1_service, LatencyGreedyPolicy(),
            queue_delay_provider=lambda as_id: backlogs.get(as_id, 0.0),
        )
        engine.run_rounds(1)
        assert engine.expected_latency_ms(0) == pytest.approx(20.0)
        assert engine.per_flow_latency_ms() == {0: pytest.approx(27.5)}
        # Without a provider the per-flow view is the plain path latency.
        plain = self._engine(fig1, fig1_service, LatencyGreedyPolicy())
        plain.run_rounds(1)
        assert plain.per_flow_latency_ms() == {0: pytest.approx(20.0)}

    def test_unknown_source_as_rejected(self, fig1, fig1_service):
        matrix = TrafficMatrix(
            groups=(
                FlowGroup(group_id=0, source_as=99, destination_as=3, demand_mbps=1.0),
            )
        )
        with pytest.raises(ConfigurationError):
            TrafficEngine(topology=fig1, path_services={1: fig1_service}, matrix=matrix)


# ----------------------------------------------------------------------
# the engine coupled to the dynamic-scenario beaconing driver
# ----------------------------------------------------------------------
def build_coupled(period_count=4, fail_at_periods=2.5, round_interval_ms=minutes(1)):
    topology = generate_topology(
        TopologyConfig(num_ases=18, num_core=3, num_transit=6, seed=13)
    )
    victim_as = topology.as_ids()[-1]
    matrix = hotspot_matrix(
        topology, total_demand_mbps=20_000.0, total_flows=50_000,
        hotspot_as=victim_as, hotspot_fraction=0.4, max_pairs=80, seed=3,
    )
    scenario = don_scenario(periods=period_count, verify_signatures=False)
    for link in topology.links_of(victim_as):
        scenario.at(fail_at_periods * minutes(10)).fail_link(link.key)
    simulation = BeaconingSimulation(topology, scenario)
    engine = TrafficEngine.for_simulation(
        simulation, matrix, policy=EcmpPolicy(max_paths=2),
        round_interval_ms=round_interval_ms,
    )
    engine.schedule_rounds(start_ms=minutes(10) + round_interval_ms, count=25)
    return simulation, engine


@pytest.fixture(scope="module")
def coupled_run():
    """One shared coupled beaconing+traffic run (read-only in tests)."""
    simulation, engine = build_coupled()
    simulation.run()
    return simulation, engine


class TestTrafficEngineCoupled:
    def test_failure_breaks_and_reroutes_flows(self, coupled_run):
        _simulation, engine = coupled_run
        collector = engine.collector
        fail_ms = 2.5 * minutes(10)
        assert engine.rounds_run == 25
        assert collector.reroutes, "cutting an AS off must break flow groups"
        for record in collector.reroutes:
            # PR 4: groups break when the revocation *message* withdraws
            # their paths at the source AS — at the failure instant for
            # sources adjacent to the failed link, a few propagation hops
            # later for everyone else — never before the failure and well
            # within the same period.
            assert fail_ms <= record.broken_at_ms < fail_ms + minutes(1)
            assert record.cause.startswith("revoke link")
        # Groups towards the cut-off stub stay black-holed (no recovery
        # was scheduled); their demand shows up as unserved.
        assert collector.open_blackholes()
        assert any(
            sample.blackholed_groups > 0 for sample in collector.samples
        )

    def test_coupled_run_is_deterministic(self, coupled_run):
        _simulation, engine = coupled_run
        repeat_sim, repeat_engine = build_coupled()
        repeat_sim.run()
        assert repeat_engine.collector.trace_digest() == engine.collector.trace_digest()
        assert repeat_engine.collector.trace_text() == engine.collector.trace_text()

    def test_goodput_dips_after_cutoff(self, coupled_run):
        _simulation, engine = coupled_run
        samples = engine.collector.samples
        fail_ms = 2.5 * minutes(10)
        before = [s.carried_mbps for s in samples if s.time_ms < fail_ms]
        after = [s.carried_mbps for s in samples if s.time_ms > fail_ms]
        assert before and after
        assert min(after) < before[-1]


# ----------------------------------------------------------------------
# the pinned example scenario (digest regression, like the golden trace)
# ----------------------------------------------------------------------
class TestExampleScenarioDigest:
    def test_traffic_failover_example_digest(self):
        module = load_example("traffic_failover.py")
        simulation, engine = module.build()
        simulation.run()
        collector = engine.collector
        digest = collector.trace_digest()
        assert digest == EXAMPLE_TRACE_DIGEST, (
            "traffic trace changed — if intentional, update "
            f"EXAMPLE_TRACE_DIGEST to {digest!r}"
        )
        # The scenario's headline numbers the example prints.
        assert collector.reroutes
        assert collector.mean_time_to_reroute_ms() is not None
        failure_ms = min(t.time_ms for t in simulation.scenario.timeline)
        assert collector.goodput_recovery_ms(failure_ms) is not None


# ----------------------------------------------------------------------
# goodput recovery on oscillating traces (PR 4 satellite)
# ----------------------------------------------------------------------
def _trace(collector_samples):
    from repro.traffic.collector import RoundSample, TrafficCollector

    collector = TrafficCollector()
    for time_ms, carried in collector_samples:
        collector.on_round(
            RoundSample(
                time_ms=time_ms,
                offered_mbps=100.0,
                carried_mbps=carried,
                unserved_mbps=0.0,
                active_groups=1,
                blackholed_groups=0,
                flow_rounds=1,
                max_link_utilization=0.5,
            )
        )
    return collector


class TestGoodputRecovery:
    def test_oscillating_recovery_dates_after_last_dip(self):
        # Goodput dips, pops back in band for one sample, dips again, and
        # only then recovers for good.  The first in-band sample at t=300
        # is a transient: recovery must be dated at t=500, after the last
        # dip — the pre-fix code returned 300 - 100 = 200 here.
        collector = _trace(
            [(0.0, 100.0), (100.0, 50.0), (200.0, 60.0), (300.0, 100.0),
             (400.0, 55.0), (500.0, 99.5), (600.0, 100.0)]
        )
        assert collector.goodput_recovery_ms(50.0, tolerance=0.01) == 450.0

    def test_monotone_recovery_unchanged(self):
        collector = _trace(
            [(0.0, 100.0), (100.0, 50.0), (200.0, 100.0), (300.0, 100.0)]
        )
        assert collector.goodput_recovery_ms(50.0, tolerance=0.01) == 150.0

    def test_trace_ending_in_a_dip_is_unrecovered(self):
        collector = _trace([(0.0, 100.0), (100.0, 50.0), (200.0, 100.0), (300.0, 40.0)])
        assert collector.goodput_recovery_ms(50.0, tolerance=0.01) is None

    def test_no_dip_returns_none(self):
        collector = _trace([(0.0, 100.0), (100.0, 100.0), (200.0, 100.0)])
        assert collector.goodput_recovery_ms(50.0) is None


# ----------------------------------------------------------------------
# PR 7: closed-loop demand under silent degradation
# ----------------------------------------------------------------------
class TestPreferClean:
    def test_returns_clean_subset(self, fig1_paths):
        short, wide, middle = fig1_paths
        paths = [
            RegisteredPath(segment=s, criteria_tags=("t",), registered_at_ms=0.0)
            for s in (short, wide, middle)
        ]
        loss = {id(paths[0]): 0.9, id(paths[1]): 0.0, id(paths[2]): 0.2}
        clean = prefer_clean(paths, lambda p: loss[id(p)], threshold=0.05)
        assert clean == [paths[1]]

    def test_all_lossy_returns_everything(self, fig1_paths):
        short, wide, _middle = fig1_paths
        paths = [
            RegisteredPath(segment=s, criteria_tags=("t",), registered_at_ms=0.0)
            for s in (short, wide)
        ]
        clean = prefer_clean(paths, lambda _p: 0.5, threshold=0.05)
        assert clean == paths  # back-off, not starvation, handles this case


class TestClosedLoopDemand:
    def _engine(self, fig1, fig1_service, link_state, closed_loop, demand=50.0):
        matrix = TrafficMatrix(
            groups=(
                FlowGroup(
                    group_id=0, source_as=1, destination_as=3,
                    demand_mbps=demand, flow_count=100,
                ),
            )
        )
        return TrafficEngine(
            topology=fig1,
            path_services={1: fig1_service},
            matrix=matrix,
            policy=LatencyGreedyPolicy(),
            link_state=link_state,
            closed_loop=closed_loop,
        )

    def test_config_validation(self):
        ClosedLoopDemand()  # defaults are valid
        with pytest.raises(ConfigurationError):
            ClosedLoopDemand(loss_threshold=0.0)
        with pytest.raises(ConfigurationError):
            ClosedLoopDemand(backoff_factor=1.0)
        with pytest.raises(ConfigurationError):
            ClosedLoopDemand(recovery_factor=0.9)
        with pytest.raises(ConfigurationError):
            ClosedLoopDemand(min_demand_fraction=0.0)

    def test_backoff_under_silent_loss_and_recovery_after(self, fig1, fig1_service):
        state = LinkState()
        for link in fig1.link_ids():
            state.set_gray(link, 1.0)  # every path silently black-holes
        engine = self._engine(
            fig1, fig1_service, state,
            ClosedLoopDemand(
                backoff_factor=0.5, recovery_factor=2.0, min_demand_fraction=0.1
            ),
        )
        collector = engine.run_rounds(5)

        offered = [sample.offered_mbps for sample in collector.samples]
        # Nominal demand in round 0, then multiplicative back-off, floored
        # at 10 % of nominal.
        assert offered[0] == pytest.approx(50.0)
        assert offered[1] == pytest.approx(25.0)
        assert offered[2] == pytest.approx(12.5)
        assert offered[3] == pytest.approx(6.25)
        assert offered[4] == pytest.approx(5.0)
        assert any(" backoff " in line for line in collector.trace)

        # The gray failure clears: demand multiplicatively recovers to
        # nominal and stays there.
        for link in fig1.link_ids():
            state.clear_gray(link)
        collector = engine.run_rounds(8)
        assert collector.samples[-1].offered_mbps == pytest.approx(50.0)

    def test_open_loop_engine_ignores_degradation(self, fig1, fig1_service):
        state = LinkState()
        for link in fig1.link_ids():
            state.set_gray(link, 1.0)
        engine = self._engine(fig1, fig1_service, state, closed_loop=None)
        collector = engine.run_rounds(3)
        assert all(s.offered_mbps == pytest.approx(50.0) for s in collector.samples)
        assert not any(" backoff " in line for line in collector.trace)

    def test_selection_steers_around_lossy_path(self, fig1, fig1_service, fig1_paths):
        """With a clean alternative registered, groups avoid the gray path."""
        short, _wide, _middle = fig1_paths
        state = LinkState()
        for link in short.links():
            state.set_gray(link, 1.0)
        engine = self._engine(fig1, fig1_service, state, ClosedLoopDemand())
        collector = engine.run_rounds(2)
        # Latency-greedy would pick the 20 ms short path; prefer_clean
        # forces the clean 30 ms middle path instead, and no back-off
        # fires because the chosen path delivers everything.
        assert collector.samples[0].mean_latency_ms == pytest.approx(30.0)
        assert collector.samples[-1].offered_mbps == pytest.approx(50.0)
        assert not any(" backoff " in line for line in collector.trace)

    def test_backoff_lines_make_trace_digest_diverge(self, fig1, fig1_service):
        """The closed-loop trace is digest-pinnable and distinct."""
        state = LinkState()
        for link in fig1.link_ids():
            state.set_gray(link, 1.0)
        closed = self._engine(fig1, fig1_service, state, ClosedLoopDemand())
        open_loop = self._engine(fig1, fig1_service, state, None)
        assert (
            closed.run_rounds(3).trace_digest()
            != open_loop.run_rounds(3).trace_digest()
        )
