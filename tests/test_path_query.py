"""Tests of the path-query serving tier (PR 9).

Typed :class:`~repro.core.query.PathQuery` lookups served by per-AS
:class:`~repro.core.query.PathQueryFrontend` caches over the
:class:`~repro.core.databases.PathService`; query/response messages and
pull returns on the typed fabric; down-segment registration driven by
``PathRegistrationMessage`` arrival at the origin.  The satellites pin:

* the ``paths_to`` origin index against the historical full scan
  (property test),
* that a cached response never outlives its member segments
  (``expiry_margin_ms`` honoured),
* that frontend routing + caching leave the golden and family digests
  bit-identical, and
* cache coherence under a ``revocation_storm`` overload scenario — no
  stale path is served after the withdrawal arrives.
"""

import hashlib
import random
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.control_service import ControlServiceConfig, IrecControlService
from repro.core.databases import PathService, RegisteredPath
from repro.core.local_view import LocalTopologyView
from repro.core.messages import (
    PathQueryMessage,
    PathQueryResponse,
    PathRegistrationMessage,
    PullReturnMessage,
)
from repro.core.query import PathQuery, PathQueryFrontend
from repro.core.transport import LoopbackTransport, NullTransport
from repro.crypto.keys import KeyStore
from repro.dataplane.endhost import EndHost
from repro.exceptions import ConfigurationError
from repro.obs.bridge import bind_query_frontend
from repro.obs.registry import MetricsRegistry
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.engine import EventScheduler
from repro.simulation.events import revocation_storm
from repro.simulation.network import InboxProfile, SimulatedTransport
from repro.simulation.scenario import don_scenario
from repro.units import minutes

from tests.conftest import line_topology, make_beacon
from tests.test_golden_trace import (
    FAMILY_DIGESTS,
    GOLDEN_DIGEST,
    run_family_scenario,
    run_scenario,
)


def _registered(key_store, origin=1, via=2, tags=("1sp",), validity_ms=None):
    kwargs = {} if validity_ms is None else {"validity_ms": validity_ms}
    segment = make_beacon(key_store, [(origin, None, 1), (via, 1, None)], **kwargs)
    return RegisteredPath(segment=segment, criteria_tags=tags, registered_at_ms=0.0)


# ---------------------------------------------------------------------------
# The typed query
# ---------------------------------------------------------------------------


class TestPathQuery:
    def test_policy_key_normalizes_tag_order(self):
        a = PathQuery(origin_as=1, required_tags=("don", "1sp"))
        b = PathQuery(origin_as=1, required_tags=("1sp", "don"))
        assert a.policy_key() == b.policy_key()
        assert a.cache_key() == b.cache_key() == (1, a.policy_key())

    def test_distinct_policies_get_distinct_keys(self):
        assert (
            PathQuery(origin_as=1).cache_key()
            != PathQuery(origin_as=1, max_latency_ms=50.0).cache_key()
        )
        assert PathQuery(origin_as=1).cache_key() != PathQuery(origin_as=2).cache_key()

    def test_admits_filters_on_tags_latency_bandwidth(self, key_store):
        path = _registered(key_store, tags=("don",))  # 2 hops x 10 ms, 1000 Mbit/s
        assert PathQuery(origin_as=1).admits(path)
        assert PathQuery(origin_as=1, required_tags=("don", "other")).admits(path)
        assert not PathQuery(origin_as=1, required_tags=("1sp",)).admits(path)
        assert PathQuery(origin_as=1, max_latency_ms=100.0).admits(path)
        assert not PathQuery(origin_as=1, max_latency_ms=5.0).admits(path)
        assert PathQuery(origin_as=1, min_bandwidth_mbps=500.0).admits(path)
        assert not PathQuery(origin_as=1, min_bandwidth_mbps=5_000.0).admits(path)

    def test_non_positive_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            PathQuery(origin_as=1, limit=0)

    def test_query_message_round_trip_fields(self, key_store):
        query = PathQuery(origin_as=3, max_latency_ms=50.0)
        message = PathQueryMessage(
            origin_as=1, sequence=7, created_at_ms=0.0, query=query
        )
        assert message.kind == "path_query"
        assert message.size_bytes() > 0
        response = PathQueryResponse(
            origin_as=2,
            sequence=1,
            created_at_ms=1.0,
            query=query,
            paths=(_registered(key_store, origin=3),),
            cache_hit=True,
            request_origin=1,
            request_sequence=7,
        )
        assert response.kind == "path_query_response"
        assert response.size_bytes() > 0
        assert response.request_sequence == 7

    def test_query_message_requires_query(self):
        with pytest.raises(ConfigurationError):
            PathQueryMessage(origin_as=1, sequence=1, created_at_ms=0.0)


# ---------------------------------------------------------------------------
# Satellite: the _by_origin index vs the historical full scan
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1)
def _segment_pool():
    """A pinned pool of signed terminated segments (3 origins x 3 vias)."""
    key_store = KeyStore()
    return tuple(
        make_beacon(key_store, [(origin, None, 1), (via, 1, None)])
        for origin in (1, 2, 3)
        for via in (4, 5, 6)
    )


class TestOriginIndexEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 8), st.sampled_from(["a", "b"])), max_size=24
        ),
        removals=st.sets(st.integers(0, 8), max_size=6),
    )
    def test_indexed_lookup_matches_full_scan(self, ops, removals):
        """Property: after any register/merge/remove sequence, the indexed
        ``paths_to``/``down_paths_to`` equal the pre-PR 9 full scan of the
        digest table — same members, same order."""
        pool = _segment_pool()
        service = PathService()
        for index, tag in ops:
            service.register(
                RegisteredPath(
                    segment=pool[index], criteria_tags=(tag,), registered_at_ms=0.0
                )
            )
        doomed = {pool[index].digest() for index in removals}
        service.remove_matching(lambda path: path.segment.digest() in doomed)
        for origin in (1, 2, 3, 99):
            scan = [
                path
                for path in service.all_paths()
                if path.segment.origin_as == origin
            ]
            assert service.paths_to(origin) == scan
        for terminal in (4, 5, 6, 99):
            scan = [
                path
                for path in service.all_paths()
                if path.segment.last_as == terminal
            ]
            assert service.down_paths_to(terminal) == scan

    def test_index_survives_link_and_as_withdrawal(self, key_store):
        service = PathService()
        crossing = _registered(key_store, origin=1, via=2)
        other = _registered(key_store, origin=3, via=2)
        service.register(crossing)
        service.register(other)
        assert service.remove_crossing_link(((1, 1), (2, 1))) == 1
        assert service.paths_to(1) == []
        assert service.paths_to(3) == [other]
        assert service.remove_crossing_as(3) == 1
        assert service.down_paths_to(2) == []

    def test_merge_keeps_one_indexed_entry(self, key_store):
        service = PathService()
        segment = make_beacon(key_store, [(1, None, 1), (2, 1, None)])
        service.register(
            RegisteredPath(segment=segment, criteria_tags=("a",), registered_at_ms=0.0)
        )
        service.register(
            RegisteredPath(segment=segment, criteria_tags=("b",), registered_at_ms=1.0)
        )
        assert len(service.paths_to(1)) == 1
        assert set(service.paths_to(1)[0].criteria_tags) == {"a", "b"}
        assert len(service.down_paths_to(2)) == 1


class TestInvalidationListeners:
    def test_register_merge_and_withdrawal_notify_origin(self, key_store):
        service = PathService()
        events = []
        service.add_invalidation_listener(events.append)
        path = _registered(key_store, origin=1, via=2)
        service.register(path)
        assert events == [1]
        # A merge of the same digest still touches origin 1.
        service.register(
            RegisteredPath(
                segment=path.segment, criteria_tags=("don",), registered_at_ms=1.0
            )
        )
        assert events == [1, 1]
        service.register(_registered(key_store, origin=3, via=2))
        assert events == [1, 1, 3]
        # Withdrawal notifies once per touched origin, not per digest.
        service.register(_registered(key_store, origin=1, via=5))
        events.clear()
        assert service.remove_crossing_as(2) == 2
        assert sorted(events) == [1, 3]

    def test_expiry_purge_notifies(self, key_store):
        service = PathService()
        events = []
        service.add_invalidation_listener(events.append)
        service.register(_registered(key_store, origin=1, validity_ms=100.0))
        events.clear()
        assert service.remove_expired(now_ms=1_000.0) == 1
        assert events == [1]


# ---------------------------------------------------------------------------
# The frontend cache
# ---------------------------------------------------------------------------


class TestFrontendCache:
    def test_miss_then_hit(self, key_store):
        service = PathService()
        service.register(_registered(key_store, origin=1))
        frontend = PathQueryFrontend(service)
        first = frontend.query(PathQuery(origin_as=1))
        assert not first.cache_hit and len(first.paths) == 1
        second = frontend.query(PathQuery(origin_as=1))
        assert second.cache_hit and second.paths == first.paths
        assert (frontend.lookups, frontend.hits, frontend.misses) == (2, 1, 1)
        assert frontend.cache_hit_ratio == pytest.approx(0.5)
        assert frontend.counters()["cache_size"] == 1

    def test_policy_filtering_through_frontend(self, key_store):
        service = PathService()
        service.register(_registered(key_store, origin=1, via=2, tags=("1sp",)))
        service.register(_registered(key_store, origin=1, via=3, tags=("don",)))
        frontend = PathQueryFrontend(service)
        tagged = frontend.query(PathQuery(origin_as=1, required_tags=("don",)))
        assert [p.criteria_tags for p in tagged.paths] == [("don",)]
        limited = frontend.query(PathQuery(origin_as=1, limit=1))
        assert len(limited.paths) == 1
        assert len(frontend.query(PathQuery(origin_as=1)).paths) == 2

    def test_registration_invalidates_only_touched_origin(self, key_store):
        service = PathService()
        service.register(_registered(key_store, origin=1, via=2))
        service.register(_registered(key_store, origin=3, via=2))
        frontend = PathQueryFrontend(service)
        frontend.query(PathQuery(origin_as=1))
        frontend.query(PathQuery(origin_as=3))
        assert frontend.cache_size == 2
        service.register(_registered(key_store, origin=1, via=5))
        assert frontend.cache_size == 1
        assert frontend.invalidations == 1
        # Origin 3's entry survived; origin 1 re-materializes with the new path.
        assert frontend.query(PathQuery(origin_as=3)).cache_hit
        refreshed = frontend.query(PathQuery(origin_as=1))
        assert not refreshed.cache_hit and len(refreshed.paths) == 2

    def test_withdrawal_is_never_served_from_cache(self, key_store):
        service = PathService()
        victim = _registered(key_store, origin=1, via=2)
        service.register(victim)
        service.register(_registered(key_store, origin=1, via=5))
        frontend = PathQueryFrontend(service)
        assert len(frontend.paths(1)) == 2
        assert service.remove_crossing_link(((1, 1), (2, 1))) == 1
        served = frontend.paths(1)
        assert len(served) == 1
        assert victim.segment.digest() not in {
            p.segment.digest() for p in served
        }

    def test_lru_bound_and_eviction(self, key_store):
        service = PathService()
        for origin in (1, 2, 3):
            service.register(_registered(key_store, origin=origin, via=5))
        frontend = PathQueryFrontend(service, capacity=2)
        for origin in (1, 2, 3):
            frontend.query(PathQuery(origin_as=origin))
        assert frontend.cache_size == 2
        assert frontend.evictions == 1
        # Origin 1 was the least recently used: it misses again.
        assert not frontend.query(PathQuery(origin_as=1)).cache_hit
        assert frontend.query(PathQuery(origin_as=3)).cache_hit

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            PathQueryFrontend(PathService(), capacity=0)

    def test_observatory_binding_exports_counters(self, key_store):
        service = PathService()
        service.register(_registered(key_store, origin=1))
        frontend = PathQueryFrontend(service)
        registry = bind_query_frontend(frontend, registry=MetricsRegistry())
        frontend.paths(1)
        frontend.paths(1)
        snap = registry.snapshot()
        assert snap["query.lookups_total"] == 2
        assert snap["query.cache_hits_total"] == 1
        assert snap["query.cache_hit_ratio"] == pytest.approx(0.5)
        assert snap["query.cache_size"] == 1


class TestExpiryCoherence:
    """Satellite: a cached response never outlives its member segments."""

    def test_expired_but_cached_path_is_never_served(self, key_store):
        service = PathService()
        service.register(_registered(key_store, origin=1, validity_ms=500.0))
        frontend = PathQueryFrontend(service)
        assert len(frontend.paths(1, now_ms=0.0)) == 1
        assert frontend.cache_size == 1
        # The segment expired but no purge ran: the service still holds it,
        # the cache still holds the response — serving must refuse both.
        assert frontend.paths(1, now_ms=600.0) == ()
        assert frontend.expired_entries == 1
        assert len(service.paths_to(1)) == 1  # un-purged, by construction

    def test_expiry_margin_is_honoured(self, key_store):
        service = PathService(expiry_margin_ms=200.0)
        service.register(_registered(key_store, origin=1, validity_ms=500.0))
        frontend = PathQueryFrontend(service)
        assert len(frontend.paths(1, now_ms=0.0)) == 1
        # Inside the margin (valid until 500 - 200 = 300 ms): refused even
        # though the raw expiry is still 150 ms away.
        assert frontend.paths(1, now_ms=350.0) == ()
        # A fresh materialization applies the same horizon.
        assert frontend.query(PathQuery(origin_as=1), now_ms=350.0).paths == ()

    def test_mixed_expiries_pin_the_entry_to_the_earliest(self, key_store):
        service = PathService()
        service.register(_registered(key_store, origin=1, via=2, validity_ms=500.0))
        service.register(_registered(key_store, origin=1, via=5, validity_ms=50_000.0))
        frontend = PathQueryFrontend(service)
        assert len(frontend.paths(1, now_ms=0.0)) == 2
        # Past the earliest member's expiry the whole entry is refused and
        # re-materialized with the surviving path only.
        served = frontend.paths(1, now_ms=600.0)
        assert len(served) == 1
        assert frontend.expired_entries == 1


class TestEndHostRouting:
    def test_frontend_and_direct_lookup_agree(self, key_store):
        service = PathService()
        service.register(_registered(key_store, origin=1, via=2))
        service.register(_registered(key_store, origin=1, via=5))
        direct = EndHost(host_id="h", as_id=7, path_service=service)
        cached = EndHost(
            host_id="h",
            as_id=7,
            path_service=service,
            query_frontend=PathQueryFrontend(service),
        )
        assert cached.available_paths(1) == direct.available_paths(1)
        assert cached.available_paths(1) == direct.available_paths(1)  # hit path
        assert cached.query_frontend.hits == 1


# ---------------------------------------------------------------------------
# Typed queries and pull returns over the fabric
# ---------------------------------------------------------------------------


def _loopback_services(topology, key_store, **config_kwargs):
    transport = LoopbackTransport(topology=topology)
    services = {}
    for as_info in topology:
        view = LocalTopologyView.from_topology(topology, as_info.as_id)
        service = IrecControlService(
            view=view,
            key_store=key_store,
            transport=transport,
            config=ControlServiceConfig(verify_signatures=False, **config_kwargs),
        )
        services[as_info.as_id] = service
        transport.register(service)
    return transport, services


def _simulated_services(topology, key_store, **config_kwargs):
    scheduler = EventScheduler()
    transport = SimulatedTransport(topology=topology, scheduler=scheduler)
    services = {}
    for as_info in topology:
        view = LocalTopologyView.from_topology(topology, as_info.as_id)
        service = IrecControlService(
            view=view,
            key_store=key_store,
            transport=transport,
            config=ControlServiceConfig(verify_signatures=False, **config_kwargs),
        )
        services[as_info.as_id] = service
        transport.register(service)
    return scheduler, transport, services


class TestQueryFabric:
    def test_loopback_query_round_trip(self, key_store):
        topology = line_topology(3)
        _transport, services = _loopback_services(topology, key_store)
        services[2].path_service.register(
            RegisteredPath(
                segment=make_beacon(key_store, [(3, None, 1), (2, 2, None)]),
                criteria_tags=("1sp",),
                registered_at_ms=0.0,
            )
        )
        services[1].send_path_query(
            egress_interface=2, query=PathQuery(origin_as=3), now_ms=5.0
        )
        assert len(services[1].query_responses) == 1
        response, _at = services[1].query_responses[0]
        assert response.request_origin == 1
        assert not response.cache_hit
        assert [p.segment.origin_as for p in response.paths] == [3]
        # The second ask is served from AS 2's response cache.
        services[1].send_path_query(
            egress_interface=2, query=PathQuery(origin_as=3), now_ms=6.0
        )
        assert services[1].query_responses[1][0].cache_hit

    def test_simulated_fabric_counts_query_traffic(self, key_store):
        topology = line_topology(3)
        scheduler, transport, services = _simulated_services(topology, key_store)
        services[2].path_service.register(
            RegisteredPath(
                segment=make_beacon(key_store, [(3, None, 1), (2, 2, None)]),
                criteria_tags=("1sp",),
                registered_at_ms=0.0,
            )
        )
        services[1].send_path_query(
            egress_interface=2, query=PathQuery(origin_as=3), now_ms=0.0
        )
        assert services[1].query_responses == []  # still in flight
        scheduler.run_until(100.0)
        assert len(services[1].query_responses) == 1
        collector = transport.collector
        assert collector.total_queries == 1
        assert collector.total_query_responses == 1
        assert collector.control_messages_total() == 2

    def test_local_dispatch_returns_response_inline(self, key_store):
        topology = line_topology(2)
        _transport, services = _loopback_services(topology, key_store)
        services[1].path_service.register(
            RegisteredPath(
                segment=make_beacon(key_store, [(2, None, 1), (1, 2, None)]),
                criteria_tags=("1sp",),
                registered_at_ms=0.0,
            )
        )
        message = PathQueryMessage(
            origin_as=1, sequence=1, created_at_ms=0.0, query=PathQuery(origin_as=2)
        )
        response = services[1].on_message(message, on_interface=-1, now_ms=0.0)
        assert isinstance(response, PathQueryResponse)
        assert len(response.paths) == 1


class TestTypedPullReturn:
    def test_null_transport_frames_pull_return(self, key_store):
        transport = NullTransport()
        beacon = make_beacon(key_store, [(1, None, 1), (2, 1, 2)])
        transport.return_beacon_to_origin(sender_as=2, beacon=beacon)
        assert transport.returned == [(2, beacon)]
        kinds = [message.kind for _s, _i, message in transport.messages]
        assert kinds == ["pull_return"]
        assert isinstance(transport.messages[0][2], PullReturnMessage)

    def test_loopback_pull_return_reaches_origin_handler(self, key_store):
        topology = line_topology(3)
        _transport, services = _loopback_services(topology, key_store)
        beacon = make_beacon(key_store, [(1, None, 1), (2, 1, 2)])
        _transport.return_beacon_to_origin(sender_as=2, beacon=beacon)
        assert [b.digest() for b, _t in services[1].pull_results] == [beacon.digest()]


class TestDownSegmentRegistration:
    def test_registration_message_forwards_toward_origin(self, key_store):
        """A transit AS relays register-at-origin announcements hop by hop
        over its own segment entry's ingress interface; the origin registers."""
        topology = line_topology(3)
        scheduler, _transport, services = _simulated_services(topology, key_store)
        segment = make_beacon(key_store, [(1, None, 2), (2, 1, 2), (3, 1, None)])
        message = PathRegistrationMessage(
            origin_as=3,
            sequence=1,
            created_at_ms=0.0,
            path=RegisteredPath(
                segment=segment, criteria_tags=("1sp",), registered_at_ms=0.0
            ),
            register_at_origin=True,
        )
        # AS 3 announces toward AS 2 (its beacon-arrival interface).
        _transport.send_message(3, 1, message)
        scheduler.run_until(1_000.0)
        # Relayed through AS 2 without registering there; origin AS 1 holds
        # the down-segment, keyed by its terminal.
        assert services[2].path_service.all_paths() == []
        down = services[1].path_service.down_paths_to(3)
        assert [p.segment.digest() for p in down] == [segment.digest()]
        assert services[1].path_service.paths_to(1) == down

    def test_simulation_flag_registers_down_segments_at_origin(self):
        def run(enabled):
            topology = line_topology(4)
            scenario = don_scenario(periods=2, verify_signatures=False)
            scenario.register_down_segments = enabled
            simulation = BeaconingSimulation(topology, scenario)
            result = simulation.run()
            origin_service = result.services[1]
            down = {
                terminal: len(origin_service.path_service.down_paths_to(terminal))
                for terminal in (2, 3, 4)
            }
            return down, result.collector.total_registrations

        down_on, registrations_on = run(enabled=True)
        assert sum(down_on.values()) > 0
        assert registrations_on > 0
        down_off, registrations_off = run(enabled=False)
        assert sum(down_off.values()) == 0
        assert registrations_off == 0


# ---------------------------------------------------------------------------
# Satellite: golden digests unchanged with frontend routing + caching
# ---------------------------------------------------------------------------


def _probing_instrument(probe_minutes):
    """Schedule read-only frontend probes at the given minutes of a run."""

    def instrument(simulation):
        def probe(now_ms):
            for service in simulation.services.values():
                frontend = service.query_frontend
                frontend.paths(1, now_ms=now_ms)
                frontend.query(
                    PathQuery(origin_as=1, max_latency_ms=200.0), now_ms=now_ms
                )

        for minute in probe_minutes:
            simulation.scheduler.schedule_at(minutes(minute) + 1.0, probe)

    return instrument


class TestGoldenTraceWithCaching:
    @settings(max_examples=5, deadline=None)
    @given(
        probe_minutes=st.sets(st.integers(min_value=3, max_value=100), max_size=4)
    )
    def test_frontend_probes_leave_golden_digest_unchanged(self, probe_minutes):
        """Property: serving cached queries mid-run, at any instants, never
        perturbs the pinned golden trace."""
        trace = run_scenario(instrument=_probing_instrument(sorted(probe_minutes)))
        digest = hashlib.sha256(trace.encode("utf-8")).hexdigest()
        assert digest == GOLDEN_DIGEST

    @pytest.mark.parametrize("family", sorted(FAMILY_DIGESTS))
    def test_family_digests_unchanged_by_query_caching(self, family, monkeypatch):
        """Each adversarial family digest is reproduced while every AS's
        frontend serves probes mid-run (reads never mutate sim state)."""
        original_run = BeaconingSimulation.run

        def probed_run(simulation):
            _probing_instrument((12, 35, 52))(simulation)
            return original_run(simulation)

        monkeypatch.setattr(BeaconingSimulation, "run", probed_run)
        trace = run_family_scenario(family)
        digest = hashlib.sha256(trace.encode("utf-8")).hexdigest()
        assert digest == FAMILY_DIGESTS[family]


# ---------------------------------------------------------------------------
# Satellite: cache coherence under a revocation-storm overload scenario
# ---------------------------------------------------------------------------


class TestRevocationStormCoherence:
    def test_no_stale_path_served_after_withdrawal(self):
        """Caches are warmed before a storm hits bounded inboxes; once the
        withdrawals have been applied, no lookup may serve a path crossing
        a revoked link, and served sets match the authoritative service."""
        topology = line_topology(5)
        interval = minutes(10)
        scenario = don_scenario(periods=6, verify_signatures=False)
        scenario.inbox_profile = InboxProfile(
            budget_per_tick=8, capacity=256, service_interval_ms=5.0
        )
        storm = revocation_storm(
            topology, count=2, rng=random.Random(7), at_ms=2.5 * interval
        )
        scenario.timeline.extend(storm)
        failed_links = {timed.event.link_id for timed in storm}

        simulation = BeaconingSimulation(topology, scenario)

        def warm(now_ms):
            for service in simulation.services.values():
                for origin in (1,):
                    service.query_frontend.paths(origin, now_ms=now_ms)

        simulation.scheduler.schedule_at(2.2 * interval, warm)
        result = simulation.run()
        final = result.final_time_ms

        assert sum(s.query_frontend.lookups for s in result.services.values()) > 0
        invalidations = sum(
            s.query_frontend.invalidations for s in result.services.values()
        )
        assert invalidations > 0  # the storm really dropped warmed entries

        storm_applied = 0
        for service in result.services.values():
            frontend = service.query_frontend
            origins = {p.segment.origin_as for p in service.path_service.all_paths()}
            for origin in origins | {1}:
                served = frontend.paths(origin, now_ms=final)
                authoritative = service.path_service.paths_to(origin)
                assert list(served) == authoritative
            if service.revocations.applied_at:
                storm_applied += 1
                for origin in origins | {1}:
                    for path in frontend.paths(origin, now_ms=final):
                        assert not (failed_links & set(path.segment.link_set()))
        assert storm_applied > 0


# ---------------------------------------------------------------------------
# Negative caching (PR 10 satellite)
# ---------------------------------------------------------------------------


class TestNegativeCache:
    """Empty responses are first-class cache entries with their own counters."""

    def test_empty_response_is_cached_and_counted(self, key_store):
        service = PathService()
        frontend = PathQueryFrontend(service)
        first = frontend.query(PathQuery(origin_as=9))
        assert not first.cache_hit and first.paths == ()
        assert frontend.negative_inserts == 1
        assert frontend.negative_hits == 0
        second = frontend.query(PathQuery(origin_as=9))
        assert second.cache_hit and second.paths == ()
        assert frontend.negative_hits == 1
        # A non-empty materialization is not a negative insert.
        service.register(_registered(key_store, origin=1))
        frontend.query(PathQuery(origin_as=1))
        assert frontend.negative_inserts == 1

    def test_default_negative_entry_lives_until_invalidation(self, key_store):
        """Without a TTL the behavior is bit-identical to pre-PR-10 caching:
        the empty answer persists indefinitely and only the invalidation
        listener (a registration for the origin) drops it."""
        service = PathService()
        frontend = PathQueryFrontend(service)
        frontend.query(PathQuery(origin_as=1))
        # Far-future lookups still hit the cached empty entry.
        assert frontend.query(PathQuery(origin_as=1), now_ms=minutes(10_000)).cache_hit
        assert frontend.expired_entries == 0
        service.register(_registered(key_store, origin=1))
        assert frontend.invalidations == 1
        refreshed = frontend.query(PathQuery(origin_as=1))
        assert not refreshed.cache_hit and len(refreshed.paths) == 1

    def test_ttl_bounds_negative_entry(self):
        service = PathService()
        frontend = PathQueryFrontend(service, negative_ttl_ms=100.0)
        frontend.query(PathQuery(origin_as=1), now_ms=0.0)
        assert frontend.query(PathQuery(origin_as=1), now_ms=99.0).cache_hit
        stale = frontend.query(PathQuery(origin_as=1), now_ms=100.0)
        assert not stale.cache_hit
        assert frontend.expired_entries == 1
        assert frontend.negative_inserts == 2  # re-materialized empty

    def test_ttl_does_not_touch_positive_entries(self, key_store):
        service = PathService()
        service.register(_registered(key_store, origin=1))
        frontend = PathQueryFrontend(service, negative_ttl_ms=50.0)
        first = frontend.query(PathQuery(origin_as=1), now_ms=0.0)
        assert len(first.paths) == 1
        # Way past the negative TTL but inside segment validity: still a hit.
        assert frontend.query(PathQuery(origin_as=1), now_ms=1_000.0).cache_hit
        assert frontend.negative_inserts == 0

    def test_counters_expose_negative_keys(self):
        frontend = PathQueryFrontend(PathService())
        counters = frontend.counters()
        assert counters["negative_hits"] == 0
        assert counters["negative_inserts"] == 0
        frontend.paths(7)
        frontend.paths(7)
        counters = frontend.counters()
        assert counters["negative_inserts"] == 1
        assert counters["negative_hits"] == 1

    def test_invalid_negative_ttl_rejected(self):
        for bad in (0, -5.0):
            with pytest.raises(ConfigurationError):
                PathQueryFrontend(PathService(), negative_ttl_ms=bad)
