"""Tests for interface grouping policies and extended-path helpers."""

import pytest

from repro.algorithms.base import CandidateBeacon
from repro.core.extended_paths import (
    best_extended,
    best_received,
    extend_candidate,
    extension_changes_decision,
)
from repro.core.interface_groups import (
    ExplicitGrouping,
    GeographicGroupingPolicy,
    PerInterfaceGroupPolicy,
    SingleGroupPolicy,
)
from repro.exceptions import ConfigurationError
from repro.topology.entities import ASInfo, Interface
from repro.topology.geo import GeoCoordinate

from tests.conftest import make_beacon

ZURICH = GeoCoordinate(47.3769, 8.5417)
GENEVA = GeoCoordinate(46.2044, 6.1432)
TOKYO = GeoCoordinate(35.6762, 139.6503)
OSAKA = GeoCoordinate(34.6937, 135.5023)


def swiss_japanese_as(as_id=1):
    info = ASInfo(as_id=as_id)
    for index, location in enumerate((ZURICH, GENEVA, TOKYO, OSAKA), start=1):
        info.add_interface(Interface(as_id=as_id, interface_id=index, location=location))
    return info


class TestGroupingPolicies:
    def test_single_group(self):
        assignment = SingleGroupPolicy().assign(swiss_japanese_as())
        assert assignment.num_groups == 1
        assert assignment.members(0) == (1, 2, 3, 4)
        assert assignment.group_of(3) == 0

    def test_per_interface_groups(self):
        assignment = PerInterfaceGroupPolicy().assign(swiss_japanese_as())
        assert assignment.num_groups == 4
        assert all(len(assignment.members(g)) == 1 for g in assignment.group_ids())

    def test_geographic_grouping_small_radius(self):
        """A 300 km radius keeps Zurich+Geneva together but splits Tokyo and Osaka."""
        assignment = GeographicGroupingPolicy(radius_km=300.0).assign(swiss_japanese_as())
        assert assignment.num_groups == 3
        zurich_group = assignment.group_of(1)
        assert assignment.group_of(2) == zurich_group  # Zurich + Geneva ~225 km
        assert assignment.group_of(3) != zurich_group
        assert assignment.group_of(4) != assignment.group_of(3)  # Tokyo-Osaka ~400 km

    def test_geographic_grouping_large_radius(self):
        """A 2000 km radius merges the Swiss pair and the Japanese pair only."""
        assignment = GeographicGroupingPolicy(radius_km=2000.0).assign(swiss_japanese_as())
        assert assignment.num_groups == 2

    def test_geographic_grouping_world_radius(self):
        assignment = GeographicGroupingPolicy(radius_km=50_000.0).assign(swiss_japanese_as())
        assert assignment.num_groups == 1

    def test_300km_yields_at_least_as_many_groups_as_2000km(self):
        as_info = swiss_japanese_as()
        fine = GeographicGroupingPolicy(radius_km=300.0).assign(as_info)
        coarse = GeographicGroupingPolicy(radius_km=2000.0).assign(as_info)
        assert fine.num_groups >= coarse.num_groups

    def test_negative_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            GeographicGroupingPolicy(radius_km=-1.0)

    def test_explicit_grouping(self):
        policy = ExplicitGrouping(groups_by_as={1: {0: (1, 3), 1: (2, 4)}})
        assignment = policy.assign(swiss_japanese_as())
        assert assignment.group_of(3) == 0
        assert assignment.group_of(4) == 1
        # Unconfigured ASes fall back to a single group.
        other = policy.assign(swiss_japanese_as(as_id=2))
        assert other.num_groups == 1

    def test_group_of_unknown_interface(self):
        assignment = SingleGroupPolicy().assign(swiss_japanese_as())
        with pytest.raises(ConfigurationError):
            assignment.group_of(99)

    def test_members_of_unknown_group(self):
        assignment = SingleGroupPolicy().assign(swiss_japanese_as())
        with pytest.raises(ConfigurationError):
            assignment.members(42)


class TestExtendedPaths:
    @pytest.fixture
    def figure4_candidates(self, key_store):
        """Two received paths whose preference flips under extension.

        Path P1 has 70 ms received latency and arrives on interface 1;
        path P2 has 72 ms and arrives on interface 2.  The intra-AS latency
        to egress interface 3 is 30 ms from interface 1 but only 5 ms from
        interface 2 (paper Figure 4, numbers scaled).
        """
        p1 = CandidateBeacon(
            beacon=make_beacon(key_store, [(1, None, 1), (2, 1, 2)], link_latencies=[35.0, 35.0]),
            ingress_interface=1,
        )
        p2 = CandidateBeacon(
            beacon=make_beacon(key_store, [(1, None, 1), (3, 1, 2)], link_latencies=[36.0, 36.0]),
            ingress_interface=2,
        )
        def intra(a, b):
            table = {(1, 3): 30.0, (3, 1): 30.0, (2, 3): 5.0, (3, 2): 5.0}
            return table.get((a, b), 0.0)

        return p1, p2, intra

    def test_extend_candidate(self, figure4_candidates):
        p1, _p2, intra = figure4_candidates
        metrics = extend_candidate(p1, egress_interface=3, intra_latency_ms=intra)
        assert metrics.received_latency_ms == pytest.approx(70.0)
        assert metrics.intra_latency_ms == pytest.approx(30.0)
        assert metrics.extended_latency_ms == pytest.approx(100.0)

    def test_decision_changes_under_extension(self, figure4_candidates):
        p1, p2, intra = figure4_candidates
        changed, received_choice, extended_choice = extension_changes_decision(
            [p1, p2], egress_interface=3, intra_latency_ms=intra
        )
        assert changed
        assert received_choice is p1
        assert extended_choice is p2

    def test_best_received_and_extended(self, figure4_candidates):
        p1, p2, intra = figure4_candidates
        assert best_received([p1, p2]) is p1
        assert best_extended([p1, p2], 3, intra) is p2

    def test_empty_candidate_lists(self, figure4_candidates):
        _p1, _p2, intra = figure4_candidates
        assert best_received([]) is None
        assert best_extended([], 3, intra) is None
        changed, a, b = extension_changes_decision([], 3, intra)
        assert not changed and a is None and b is None
