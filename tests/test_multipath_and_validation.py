"""Tests for multipath failover forwarding and topology validation."""

import pytest

from repro.core.databases import PathService, RegisteredPath
from repro.dataplane.multipath import FailoverForwarder, MultipathSelector
from repro.dataplane.network import DataPlaneNetwork
from repro.exceptions import DataPlaneError
from repro.simulation.failures import LinkFailureInjector
from repro.topology.entities import ASInfo, Interface, Link, Relationship
from repro.topology.generator import generate_topology, small_test_config
from repro.topology.geo import GeoCoordinate
from repro.topology.graph import Topology
from repro.topology.validation import validate_topology

from tests.conftest import build_topology, figure1_topology, make_beacon


def diamond_path_service(key_store):
    """Two link-disjoint registered paths 1->4 plus one overlapping path."""
    service = PathService()
    upper = make_beacon(key_store, [(4, None, 1), (2, 2, 1), (1, 1, None)])
    lower = make_beacon(key_store, [(4, None, 2), (3, 2, 1), (1, 2, None)])
    overlap = make_beacon(key_store, [(4, None, 1), (2, 2, 3), (5, 1, 2), (1, 3, None)])
    for index, segment in enumerate((upper, lower, overlap)):
        service.register(
            RegisteredPath(segment=segment, criteria_tags=("hd",), registered_at_ms=float(index))
        )
    return service, upper, lower, overlap


def diamond_topology():
    loc = (47.0, 8.0)
    interfaces = {
        1: {1: loc, 2: loc, 3: loc},
        2: {1: loc, 2: loc, 3: loc},
        3: {1: loc, 2: loc},
        4: {1: loc, 2: loc},
        5: {1: loc, 2: loc},
    }
    peer = Relationship.PEER
    links = [
        ((1, 1), (2, 1), 5.0, 100.0, peer),
        ((2, 2), (4, 1), 5.0, 100.0, peer),
        ((1, 2), (3, 1), 5.0, 100.0, peer),
        ((3, 2), (4, 2), 5.0, 100.0, peer),
        ((1, 3), (5, 2), 5.0, 100.0, peer),
        ((5, 1), (2, 3), 5.0, 100.0, peer),
    ]
    return build_topology(interfaces, links)


class TestMultipathSelector:
    def test_prefers_disjoint_paths(self, key_store):
        service, upper, lower, overlap = diamond_path_service(key_store)
        selector = MultipathSelector(path_service=service)
        selected = selector.disjoint_paths(destination_as=4, max_paths=2)
        digests = {path.segment.digest() for path in selected}
        assert digests == {upper.digest(), lower.digest()}

    def test_max_paths_respected(self, key_store):
        service, *_paths = diamond_path_service(key_store)
        selector = MultipathSelector(path_service=service)
        assert len(selector.disjoint_paths(4, max_paths=1)) == 1
        assert len(selector.disjoint_paths(4, max_paths=10)) == 3

    def test_tag_filter(self, key_store):
        service, *_paths = diamond_path_service(key_store)
        selector = MultipathSelector(path_service=service)
        assert selector.disjoint_paths(4, required_tags=("missing-tag",)) == []


class TestFailoverForwarder:
    def test_primary_path_used_when_healthy(self, key_store):
        topology = diamond_topology()
        service, upper, lower, _overlap = diamond_path_service(key_store)
        selector = MultipathSelector(path_service=service)
        paths = selector.disjoint_paths(4, max_paths=2)
        forwarder = FailoverForwarder(
            network=DataPlaneNetwork(topology=topology), paths=paths
        )
        report = forwarder.deliver()
        assert report.delivered
        assert report.used_path_index == 0
        assert report.attempts == 1
        assert forwarder.usable_path_count() == 2

    def test_failover_to_disjoint_path_after_link_failure(self, key_store):
        topology = diamond_topology()
        service, upper, lower, _overlap = diamond_path_service(key_store)
        selector = MultipathSelector(path_service=service)
        paths = selector.disjoint_paths(4, max_paths=2)
        injector = LinkFailureInjector(topology=topology)
        # Fail the first link of the primary path.
        injector.fail_link(paths[0].segment.links()[0])
        forwarder = FailoverForwarder(
            network=DataPlaneNetwork(topology=topology),
            paths=paths,
            failure_injector=injector,
        )
        report = forwarder.deliver()
        assert report.delivered
        assert report.used_path_index == 1
        assert forwarder.usable_path_count() == 1

    def test_all_paths_failed(self, key_store):
        topology = diamond_topology()
        service, *_paths = diamond_path_service(key_store)
        selector = MultipathSelector(path_service=service)
        paths = selector.disjoint_paths(4, max_paths=3)
        injector = LinkFailureInjector(topology=topology)
        for path in paths:
            injector.fail_link(path.segment.links()[0])
        forwarder = FailoverForwarder(
            network=DataPlaneNetwork(topology=topology),
            paths=paths,
            failure_injector=injector,
        )
        report = forwarder.deliver()
        assert not report.delivered
        assert report.used_path_index is None

    def test_requires_paths(self, key_store):
        forwarder = FailoverForwarder(
            network=DataPlaneNetwork(topology=diamond_topology()), paths=[]
        )
        with pytest.raises(DataPlaneError):
            forwarder.deliver()


class TestTopologyValidation:
    def test_generated_topology_is_valid(self):
        topology = generate_topology(small_test_config())
        report = validate_topology(topology)
        assert report.is_valid, [str(i) for i in report.errors]

    def test_figure1_topology_warns_about_unattached_interface(self):
        report = validate_topology(figure1_topology())
        assert report.is_valid
        assert any("not attached" in issue.message for issue in report.warnings)

    def test_faster_than_light_link_detected(self):
        zurich = (47.3769, 8.5417)
        tokyo = (35.6762, 139.6503)
        topology = build_topology(
            {1: {1: zurich}, 2: {1: tokyo}},
            [((1, 1), (2, 1), 0.5, 100.0, Relationship.PEER)],  # 0.5 ms Zurich-Tokyo
        )
        report = validate_topology(topology)
        assert not report.is_valid
        assert any("faster than light" in issue.message for issue in report.errors)

    def test_disconnected_topology(self):
        loc = (10.0, 10.0)
        topology = Topology()
        for as_id in (1, 2):
            info = ASInfo(as_id=as_id)
            info.add_interface(Interface(as_id=as_id, interface_id=1, location=GeoCoordinate(*loc)))
            topology.add_as(info)
        report_strict = validate_topology(topology, require_connected=True)
        report_lenient = validate_topology(topology, require_connected=False)
        assert not report_strict.is_valid
        assert report_lenient.is_valid
        assert report_lenient.warnings

    def test_implausibly_slow_link_warns(self):
        loc_a = (47.0, 8.0)
        loc_b = (47.1, 8.1)
        topology = build_topology(
            {1: {1: loc_a}, 2: {1: loc_b}},
            [((1, 1), (2, 1), 500.0, 100.0, Relationship.PEER)],
        )
        report = validate_topology(topology)
        assert report.is_valid
        assert any("implausibly high" in issue.message for issue in report.warnings)
