"""Tests for the IREC control service and the loopback deployment."""

import pytest

from repro.algorithms.delay import DelayOptimizationAlgorithm
from repro.algorithms.registry import encode_builtin_payload
from repro.algorithms.shortest_path import KShortestPathAlgorithm
from repro.core.control_service import ControlServiceConfig, IrecControlService
from repro.core.interface_groups import GeographicGroupingPolicy
from repro.core.local_view import LocalTopologyView
from repro.core.transport import LoopbackTransport
from repro.crypto.keys import KeyStore
from repro.exceptions import ConfigurationError, UnknownAlgorithmError

from tests.conftest import figure1_topology, line_topology


def build_deployment(topology, key_store, algorithms=None, grouping_policy=None, config=None):
    """Wire an IREC control service for every AS over a loopback transport."""
    transport = LoopbackTransport(topology=topology)
    services = {}
    for as_info in topology:
        view = LocalTopologyView.from_topology(topology, as_info.as_id)
        service = IrecControlService(
            view=view,
            key_store=key_store,
            transport=transport,
            grouping_policy=grouping_policy,
            config=config or ControlServiceConfig(),
        )
        for rac_id, factory in (algorithms or {"1sp": lambda: KShortestPathAlgorithm(k=1)}).items():
            service.add_static_rac(rac_id=rac_id, algorithm=factory())
        services[as_info.as_id] = service
        transport.register(service)
    return services, transport


def run_rounds(services, rounds=3, originate=True):
    """Run synchronous beaconing rounds over loopback services."""
    for round_index in range(rounds):
        now = float(round_index * 1000)
        if originate:
            for service in services.values():
                service.originate(now_ms=now)
        for service in services.values():
            service.run_round(now_ms=now + 500.0)


class TestControlServiceBasics:
    def test_origination_carries_interface_groups(self, key_store):
        topology = figure1_topology()
        services, transport = build_deployment(
            topology, key_store, grouping_policy=GeographicGroupingPolicy(radius_km=300.0)
        )
        originated = services[1].originate(now_ms=0.0)
        assert len(originated) == 2
        assert all(beacon.interface_group_id is not None for beacon in originated)

    def test_origination_without_groups(self, key_store):
        topology = figure1_topology()
        services, _transport = build_deployment(
            topology, key_store, config=ControlServiceConfig(originate_with_groups=False)
        )
        originated = services[1].originate(now_ms=0.0)
        assert all(beacon.interface_group_id is None for beacon in originated)

    def test_publish_and_serve_algorithm(self, key_store):
        topology = figure1_topology()
        services, _transport = build_deployment(topology, key_store)
        payload = encode_builtin_payload("1sp")
        digest = services[1].publish_algorithm("my-algo", payload)
        assert services[1].serve_algorithm("my-algo") == payload
        assert len(digest) == 64
        with pytest.raises(UnknownAlgorithmError):
            services[1].serve_algorithm("unknown")

    def test_returned_beacon_must_belong_to_origin(self, key_store, beacon_factory):
        topology = figure1_topology()
        services, _transport = build_deployment(topology, key_store)
        foreign = beacon_factory([(2, None, 1), (3, 1, None)])
        with pytest.raises(ConfigurationError):
            services[1].receive_returned_beacon(foreign, now_ms=0.0)

    def test_pull_origination_requires_published_algorithm(self, key_store):
        topology = figure1_topology()
        services, _transport = build_deployment(topology, key_store)
        with pytest.raises(UnknownAlgorithmError):
            services[1].originate_pull(target_as=3, now_ms=0.0, algorithm_id="missing")


class TestLoopbackBeaconing:
    def test_paths_propagate_across_the_network(self, key_store):
        topology = line_topology(4)
        services, _transport = build_deployment(topology, key_store)
        run_rounds(services, rounds=4)
        # AS 4 must know a path back to AS 1 (three hops away).
        paths = services[4].registered_paths_to(1)
        assert paths
        assert paths[0].segment.as_path() == (1, 2, 3, 4)

    def test_round_report_counts(self, key_store):
        topology = line_topology(3)
        services, _transport = build_deployment(topology, key_store)
        for service in services.values():
            service.originate(now_ms=0.0)
        report = services[2].run_round(now_ms=1.0)
        assert report.as_id == 2
        assert len(report.rac_reports) == 1
        assert report.propagated >= 1
        assert report.registered >= 1

    def test_multiple_parallel_racs_register_distinct_tags(self, key_store):
        topology = figure1_topology()
        algorithms = {
            "1sp": lambda: KShortestPathAlgorithm(k=1),
            "don": lambda: DelayOptimizationAlgorithm(paths_per_interface=2),
        }
        services, _transport = build_deployment(topology, key_store, algorithms=algorithms)
        run_rounds(services, rounds=4)
        paths = services[3].registered_paths_to(1)
        tags = {tag for path in paths for tag in path.criteria_tags}
        assert {"1sp", "don"} <= tags

    def test_figure1_multi_criteria_paths_discovered(self, key_store):
        """The control plane discovers both the 20 ms and the wide path of Figure 1."""
        from repro.algorithms.bandwidth import WidestPathAlgorithm

        topology = figure1_topology()
        algorithms = {
            "1sp": lambda: KShortestPathAlgorithm(k=1),
            "widest": lambda: WidestPathAlgorithm(paths_per_interface=2),
        }
        services, _transport = build_deployment(topology, key_store, algorithms=algorithms)
        run_rounds(services, rounds=5)
        # Evaluated at the source AS 1: paths towards the destination AS 3.
        paths = services[1].registered_paths_to(3)
        assert paths
        latencies = [p.segment.total_latency_ms() for p in paths]
        bandwidths = [p.segment.bottleneck_bandwidth_mbps() for p in paths]
        # Small intra-AS latencies at the transit ASes add fractions of a ms.
        assert min(latencies) == pytest.approx(20.0, abs=0.5)
        assert max(bandwidths) == pytest.approx(10_000.0)

    def test_pull_based_beacon_returned_to_origin(self, key_store):
        topology = line_topology(3)
        services, _transport = build_deployment(topology, key_store)
        # Pull + on-demand beacons are only processed by on-demand RACs.
        for service in services.values():
            service.add_on_demand_rac(rac_id="on-demand")
        payload = encode_builtin_payload("1sp")
        services[1].publish_algorithm("pd-0", payload)
        services[1].originate_pull(target_as=3, now_ms=0.0, algorithm_id="pd-0")
        # Let the network propagate and process for a few rounds.
        run_rounds(services, rounds=3, originate=False)
        results = services[1].pull_results_for("pd-0")
        assert results
        beacon, _at = results[0]
        assert beacon.origin_as == 1
        assert beacon.is_terminated
        assert beacon.as_path() == (1, 2, 3)
