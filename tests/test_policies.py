"""Tests for ingress admission policies."""

import pytest

from repro.core.policies import (
    AvoidASPolicy,
    CompositePolicy,
    MaxPathLengthPolicy,
    OriginFilterPolicy,
    ValleyFreePolicy,
    standard_policies,
)
from repro.core.ingress import IngressGateway
from repro.core.databases import IngressDatabase
from repro.crypto.signer import Verifier
from repro.exceptions import ConfigurationError, PolicyViolationError
from repro.topology.entities import Relationship

from tests.conftest import build_topology, make_beacon


class TestMaxPathLengthPolicy:
    def test_accepts_short_paths(self, beacon_factory):
        policy = MaxPathLengthPolicy(max_hops=3)
        policy(beacon_factory([(1, None, 1), (2, 1, 2)]), 100)

    def test_rejects_long_paths(self, beacon_factory):
        policy = MaxPathLengthPolicy(max_hops=2)
        long_beacon = beacon_factory([(1, None, 1), (2, 1, 2), (3, 1, 2)])
        with pytest.raises(PolicyViolationError):
            policy(long_beacon, 100)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            MaxPathLengthPolicy(max_hops=0)


class TestOriginFilterPolicy:
    def test_allow_list(self, beacon_factory):
        policy = OriginFilterPolicy(allowed=frozenset({1, 2}))
        policy(beacon_factory([(1, None, 1), (5, 1, 2)]), 100)
        with pytest.raises(PolicyViolationError):
            policy(beacon_factory([(9, None, 1), (5, 1, 2)]), 100)

    def test_deny_list(self, beacon_factory):
        policy = OriginFilterPolicy(denied=frozenset({9}))
        policy(beacon_factory([(1, None, 1), (5, 1, 2)]), 100)
        with pytest.raises(PolicyViolationError):
            policy(beacon_factory([(9, None, 1), (5, 1, 2)]), 100)


class TestAvoidASPolicy:
    def test_rejects_paths_through_avoided_as(self, beacon_factory):
        policy = AvoidASPolicy(avoided=frozenset({7}))
        policy(beacon_factory([(1, None, 1), (5, 1, 2)]), 100)
        with pytest.raises(PolicyViolationError):
            policy(beacon_factory([(1, None, 1), (7, 1, 2), (5, 1, 2)]), 100)


class TestValleyFreePolicy:
    @pytest.fixture
    def triangle(self):
        """AS 1 is a customer of AS 2 and AS 3; AS 2 and AS 3 peer."""
        loc = (47.0, 8.0)
        interfaces = {
            1: {1: loc, 2: loc},
            2: {1: loc, 2: loc, 3: loc},
            3: {1: loc, 2: loc, 3: loc},
        }
        links = [
            ((1, 1), (2, 1), 5.0, 100.0, Relationship.CUSTOMER_PROVIDER),
            ((1, 2), (3, 1), 5.0, 100.0, Relationship.CUSTOMER_PROVIDER),
            ((2, 2), (3, 2), 5.0, 100.0, Relationship.PEER),
        ]
        return build_topology(interfaces, links)

    def test_customer_learned_path_accepted(self, triangle, beacon_factory):
        # AS 2 learned the path from its customer AS 1 and exports it to its
        # peer AS 3: allowed.
        policy = ValleyFreePolicy(topology=triangle)
        beacon = beacon_factory([(1, None, 1), (2, 1, 2)])
        policy(beacon, 3)

    def test_peer_learned_path_rejected_towards_peer(self, triangle, beacon_factory):
        # AS 2 learned the path from its peer AS 3 and exports it to AS 1's
        # *other provider*?  No: exporting a peer-learned path to a peer (or
        # provider) violates valley-freeness; towards its customer AS 1 it
        # would be fine.  Here AS 3 receives a beacon whose last two hops are
        # (peer 2 <- peer 3): construct 3 -> 2 -> (towards 3 again is a loop),
        # so use the provider direction instead: AS 1 receives a beacon that
        # AS 2 learned from its peer AS 3 — export to a customer is allowed.
        policy = ValleyFreePolicy(topology=triangle)
        beacon = beacon_factory([(3, None, 2), (2, 2, 1)])
        policy(beacon, 1)  # peer-learned exported to customer: allowed

    def test_provider_learned_path_rejected_towards_peer(self, triangle, beacon_factory):
        # AS 2 learned a path from its customer? No — build the violating
        # case: AS 1 (customer) learned a path from its provider AS 3 and
        # exports it to its other provider AS 2: forbidden.
        policy = ValleyFreePolicy(topology=triangle)
        beacon = beacon_factory([(3, None, 1), (1, 2, 1)])
        with pytest.raises(PolicyViolationError):
            policy(beacon, 2)

    def test_neighbor_originated_always_accepted(self, triangle, beacon_factory):
        policy = ValleyFreePolicy(topology=triangle)
        policy(beacon_factory([(2, None, 1)]), 1)

    def test_unknown_adjacency_rejected(self, triangle, beacon_factory):
        policy = ValleyFreePolicy(topology=triangle)
        foreign = beacon_factory([(9, None, 1), (8, 1, 2)])
        with pytest.raises(PolicyViolationError):
            policy(foreign, 1)


class TestCompositeAndIntegration:
    def test_composite_applies_in_order(self, beacon_factory):
        composite = CompositePolicy(
            policies=(MaxPathLengthPolicy(max_hops=5),)
        ).and_also(AvoidASPolicy(avoided=frozenset({7})))
        composite(beacon_factory([(1, None, 1), (2, 1, 2)]), 100)
        with pytest.raises(PolicyViolationError):
            composite(beacon_factory([(1, None, 1), (7, 1, 2)]), 100)

    def test_standard_policies_builder(self, beacon_factory):
        composite = standard_policies(max_hops=4, denied_origins=[9], avoided_ases=[7])
        assert len(composite.policies) == 3
        with pytest.raises(PolicyViolationError):
            composite(beacon_factory([(9, None, 1), (2, 1, 2)]), 100)

    def test_policy_plugged_into_ingress_gateway(self, key_store, beacon_factory):
        gateway = IngressGateway(
            as_id=100,
            verifier=Verifier(key_store=key_store),
            database=IngressDatabase(),
            policies=[AvoidASPolicy(avoided=frozenset({7}))],
        )
        good = beacon_factory([(1, None, 1), (2, 1, 2)])
        bad = beacon_factory([(1, None, 1), (7, 1, 2), (2, 1, 2)])
        assert gateway.receive(good, on_interface=1, now_ms=0.0)
        assert not gateway.receive(bad, on_interface=1, now_ms=0.0)
        assert gateway.stats.rejected_policy == 1
