"""Edge-case tests for the data-plane multipath and router modules.

`test_dataplane.py` covers the happy paths; this module pins down the
corners the traffic engine now leans on: empty path sets, expired paths,
link-state-aware filtering, loop detection and failed-link drops in the
forwarding walk.
"""

import pytest

from repro.core.databases import PathService, RegisteredPath
from repro.dataplane.multipath import FailoverForwarder, MultipathSelector
from repro.dataplane.network import DataPlaneNetwork
from repro.dataplane.packet import Packet
from repro.dataplane.path import ForwardingPath, HopField
from repro.dataplane.router import BorderRouter
from repro.exceptions import DataPlaneError, ForwardingError
from repro.simulation.failures import LinkFailureInjector, LinkState

from tests.conftest import figure1_topology, make_beacon

HOUR_MS = 3600.0 * 1000.0


@pytest.fixture
def fig1():
    return figure1_topology()


def register(service, segment, tags=("1sp",), at_ms=0.0):
    assert service.register(
        RegisteredPath(segment=segment, criteria_tags=tuple(tags), registered_at_ms=at_ms)
    )


@pytest.fixture
def two_path_service(key_store):
    """Path service with the short (20 ms) and wide (40 ms) 1->3 paths."""
    service = PathService()
    register(
        service,
        make_beacon(
            key_store,
            [(3, None, 1), (2, 2, 1), (1, 1, None)],
            link_latencies=[10.0, 10.0, 0.0],
        ),
    )
    register(
        service,
        make_beacon(
            key_store,
            [(3, None, 2), (6, 2, 1), (5, 2, 1), (4, 2, 1), (1, 2, None)],
            link_latencies=[10.0, 10.0, 10.0, 10.0, 0.0],
        ),
        tags=("hd",),
    )
    return service


class TestMultipathSelectorEdgeCases:
    def test_empty_path_set(self):
        selector = MultipathSelector(path_service=PathService())
        assert selector.disjoint_paths(3) == []

    def test_unknown_destination(self, two_path_service):
        selector = MultipathSelector(path_service=two_path_service)
        assert selector.disjoint_paths(999) == []

    def test_tag_filter_excludes_everything(self, two_path_service):
        selector = MultipathSelector(path_service=two_path_service)
        assert selector.disjoint_paths(3, required_tags=("nope",)) == []

    def test_expired_paths_are_dropped(self, key_store):
        service = PathService()
        register(
            service,
            make_beacon(
                key_store,
                [(3, None, 1), (2, 2, 1), (1, 1, None)],
                validity_ms=1_000.0,
            ),
        )
        selector = MultipathSelector(path_service=service)
        assert len(selector.disjoint_paths(3)) == 1
        assert len(selector.disjoint_paths(3, now_ms=500.0)) == 1
        assert selector.disjoint_paths(3, now_ms=2_000.0) == []

    def test_link_state_filters_dead_paths(self, two_path_service):
        state = LinkState()
        selector = MultipathSelector(path_service=two_path_service, link_state=state)
        assert len(selector.disjoint_paths(3)) == 2
        state.fail_link(((1, 1), (2, 1)))
        survivors = selector.disjoint_paths(3)
        assert len(survivors) == 1
        assert survivors[0].segment.hop_count == 5  # only the wide path

    def test_disjoint_selection_prefers_non_overlapping(self, key_store):
        service = PathService()
        # Two paths sharing the 1-4 link, one fully disjoint path.
        register(
            service,
            make_beacon(key_store, [(3, None, 3), (5, 3, 1), (4, 2, 1), (1, 2, None)]),
        )
        register(
            service,
            make_beacon(
                key_store,
                [(3, None, 2), (6, 2, 1), (5, 2, 1), (4, 2, 1), (1, 2, None)],
            ),
        )
        register(
            service,
            make_beacon(key_store, [(3, None, 1), (2, 2, 1), (1, 1, None)]),
        )
        selector = MultipathSelector(path_service=service)
        chosen = selector.disjoint_paths(3, max_paths=2)
        assert len(chosen) == 2
        links_a = set(chosen[0].segment.links())
        links_b = set(chosen[1].segment.links())
        assert not links_a & links_b


class TestFailoverForwarderEdgeCases:
    def test_no_paths_raises(self, fig1):
        forwarder = FailoverForwarder(network=DataPlaneNetwork(topology=fig1), paths=())
        with pytest.raises(DataPlaneError):
            forwarder.deliver()

    def test_all_paths_failed_proactively_skipped(self, fig1, two_path_service):
        injector = LinkFailureInjector(topology=fig1)
        injector.fail_link(((1, 1), (2, 1)))
        injector.fail_link(((1, 2), (4, 1)))
        forwarder = FailoverForwarder(
            network=DataPlaneNetwork(topology=fig1),
            paths=two_path_service.paths_to(3),
            failure_injector=injector,
        )
        report = forwarder.deliver()
        assert not report.delivered
        assert report.attempts == 0
        assert forwarder.usable_path_count() == 0

    def test_failover_to_second_path(self, fig1, two_path_service):
        injector = LinkFailureInjector(topology=fig1)
        injector.fail_link(((1, 1), (2, 1)))
        paths = sorted(
            two_path_service.paths_to(3), key=lambda p: p.segment.hop_count
        )
        forwarder = FailoverForwarder(
            network=DataPlaneNetwork(topology=fig1),
            paths=paths,
            failure_injector=injector,
        )
        report = forwarder.deliver()
        assert report.delivered
        assert report.used_path_index == 1
        assert report.attempts == 1  # the dead primary was skipped, not tried


class TestBorderRouterEdgeCases:
    def _path(self):
        return ForwardingPath(
            hops=(
                HopField(as_id=1, ingress_interface=None, egress_interface=1),
                HopField(as_id=2, ingress_interface=1, egress_interface=2),
                HopField(as_id=3, ingress_interface=1, egress_interface=None),
            ),
            expected_latency_ms=20.0,
            expected_bandwidth_mbps=100.0,
        )

    def test_wrong_as_rejected(self):
        router = BorderRouter(as_id=9, local_interfaces=(1,))
        with pytest.raises(ForwardingError, match="cursor points at AS 1"):
            router.forward(Packet(path=self._path()), arrived_on=None)

    def test_wrong_ingress_rejected(self):
        router = BorderRouter(as_id=1, local_interfaces=(1,))
        with pytest.raises(ForwardingError, match="authorizes ingress"):
            router.forward(Packet(path=self._path()), arrived_on=7)

    def test_unowned_egress_rejected(self):
        router = BorderRouter(as_id=1, local_interfaces=(5,))
        with pytest.raises(ForwardingError, match="does not own"):
            router.forward(Packet(path=self._path()), arrived_on=None)

    def test_local_delivery_returns_none(self):
        router = BorderRouter(as_id=3, local_interfaces=(1,))
        packet = Packet(path=self._path(), current_hop_index=2)
        assert router.forward(packet, arrived_on=1) is None


class TestDataPlaneNetworkEdgeCases:
    def test_loop_is_detected(self, fig1):
        # 1 -> 2 -> 1: topologically valid hop fields that revisit AS 1.
        looped = ForwardingPath(
            hops=(
                HopField(as_id=1, ingress_interface=None, egress_interface=1),
                HopField(as_id=2, ingress_interface=1, egress_interface=1),
                HopField(as_id=1, ingress_interface=1, egress_interface=None),
            ),
            expected_latency_ms=20.0,
            expected_bandwidth_mbps=100.0,
        )
        report = DataPlaneNetwork(topology=fig1).deliver(Packet(path=looped))
        assert not report.delivered
        assert "loop" in report.failure_reason

    def test_failed_link_drops_packet(self, fig1, two_path_service, key_store):
        state = LinkState()
        network = DataPlaneNetwork(topology=fig1, link_state=state)
        segment = two_path_service.paths_to(3)[0].segment
        from repro.dataplane.path import forwarding_path_from_segment

        path = forwarding_path_from_segment(segment)
        assert network.deliver(Packet(path=path)).delivered
        state.fail_link(path.links()[0])
        report = network.deliver(Packet(path=path))
        assert not report.delivered
        assert "down" in report.failure_reason

    def test_offline_source_as_drops_packet(self, fig1, two_path_service):
        state = LinkState()
        state.set_as_offline(1)
        network = DataPlaneNetwork(topology=fig1, link_state=state)
        from repro.dataplane.path import forwarding_path_from_segment

        path = forwarding_path_from_segment(two_path_service.paths_to(3)[0].segment)
        report = network.deliver(Packet(path=path))
        assert not report.delivered
        assert "offline" in report.failure_reason

    def test_offline_transit_as_drops_packet(self, fig1, two_path_service):
        state = LinkState()
        network = DataPlaneNetwork(topology=fig1, link_state=state)
        from repro.dataplane.path import forwarding_path_from_segment

        path = forwarding_path_from_segment(two_path_service.paths_to(3)[0].segment)
        transit_as = path.as_path()[1]
        state.set_as_offline(transit_as)
        report = network.deliver(Packet(path=path))
        assert not report.delivered
