"""Tests for the Topology container and policy queries."""

import pytest

from repro.exceptions import TopologyError, UnknownASError, UnknownLinkError
from repro.topology.entities import ASInfo, Interface, Link, Relationship
from repro.topology.geo import GeoCoordinate
from repro.topology.graph import Topology, induced_subtopology

from tests.conftest import build_topology, line_topology

LOC = (47.0, 8.0)


def simple_triangle() -> Topology:
    """Three ASes: 1 is a customer of 2 and 3; 2 and 3 peer."""
    interfaces = {
        1: {1: LOC, 2: LOC},
        2: {1: LOC, 2: LOC},
        3: {1: LOC, 2: LOC},
    }
    links = [
        ((1, 1), (2, 1), 5.0, 100.0, Relationship.CUSTOMER_PROVIDER),
        ((1, 2), (3, 1), 5.0, 100.0, Relationship.CUSTOMER_PROVIDER),
        ((2, 2), (3, 2), 5.0, 100.0, Relationship.PEER),
    ]
    return build_topology(interfaces, links)


class TestConstruction:
    def test_duplicate_as_rejected(self):
        topology = Topology()
        topology.add_as(ASInfo(as_id=1))
        with pytest.raises(TopologyError):
            topology.add_as(ASInfo(as_id=1))

    def test_link_requires_known_ases(self):
        topology = Topology()
        topology.add_as(ASInfo(as_id=1))
        topology.as_info(1).add_interface(
            Interface(as_id=1, interface_id=1, location=GeoCoordinate(*LOC))
        )
        with pytest.raises(UnknownASError):
            topology.add_link(
                Link((1, 1), (2, 1), 1.0, 10.0, Relationship.PEER)
            )

    def test_interface_attached_to_single_link(self):
        topology = simple_triangle()
        with pytest.raises(TopologyError):
            topology.add_link(Link((1, 1), (3, 2), 1.0, 10.0, Relationship.PEER))


class TestLookups:
    def test_neighbors(self):
        topology = simple_triangle()
        assert topology.neighbors(1) == (2, 3)
        assert topology.neighbors(2) == (1, 3)

    def test_unknown_as(self):
        topology = simple_triangle()
        with pytest.raises(UnknownASError):
            topology.neighbors(99)

    def test_link_of_interface(self):
        topology = simple_triangle()
        link = topology.link_of_interface((1, 1))
        assert link.as_pair == (1, 2)

    def test_unknown_link(self):
        topology = simple_triangle()
        with pytest.raises(UnknownLinkError):
            topology.link_between((1, 1), (3, 1))

    def test_remote_interface_and_neighbor(self):
        topology = simple_triangle()
        assert topology.remote_interface((1, 1)) == (2, 1)
        assert topology.neighbor_of((1, 1)) == 2

    def test_interfaces_towards(self):
        topology = simple_triangle()
        towards_2 = topology.interfaces_towards(1, 2)
        assert [i.interface_id for i in towards_2] == [1]

    def test_links_of(self):
        topology = simple_triangle()
        assert len(topology.links_of(1)) == 2

    def test_degree_and_summary(self):
        topology = simple_triangle()
        assert topology.degree_of(1) == 2
        summary = topology.summary()
        assert summary["ases"] == 3.0
        assert summary["links"] == 3.0


class TestRelationships:
    def test_providers_customers_peers(self):
        topology = simple_triangle()
        assert topology.providers_of(1) == (2, 3)
        assert topology.customers_of(2) == (1,)
        assert topology.peers_of(2) == (3,)

    def test_relationship_lookup(self):
        topology = simple_triangle()
        assert topology.relationship(1, 2) is Relationship.CUSTOMER_PROVIDER
        assert topology.relationship(2, 3) is Relationship.PEER
        assert topology.relationship(1, 99) is None

    def test_valley_free_export(self):
        topology = simple_triangle()
        # AS 2 learned a path from its customer AS 1: may export to anyone.
        assert topology.export_allowed(received_from=1, via=2, to_as=3)
        # AS 1 learned a path from its provider AS 2: may only export to
        # customers, and AS 1 has none.
        assert not topology.export_allowed(received_from=2, via=1, to_as=3)
        # Locally originated paths may always be exported.
        assert topology.export_allowed(received_from=None, via=1, to_as=2)

    def test_export_between_non_adjacent_raises(self):
        topology = simple_triangle()
        topology.add_as(ASInfo(as_id=9))
        with pytest.raises(TopologyError):
            topology.export_allowed(received_from=9, via=1, to_as=2)


class TestConversionsAndSubtopology:
    def test_to_networkx_multigraph(self):
        topology = simple_triangle()
        graph = topology.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3

    def test_to_networkx_simple_keeps_lowest_latency(self):
        interfaces = {1: {1: LOC, 2: LOC}, 2: {1: LOC, 2: LOC}}
        links = [
            ((1, 1), (2, 1), 20.0, 100.0, Relationship.PEER),
            ((1, 2), (2, 2), 5.0, 100.0, Relationship.PEER),
        ]
        topology = build_topology(interfaces, links)
        graph = topology.to_networkx(multigraph=False)
        assert graph[1][2]["latency_ms"] == 5.0

    def test_is_connected(self):
        assert simple_triangle().is_connected()
        assert line_topology(3).is_connected()

    def test_induced_subtopology(self):
        topology = simple_triangle()
        sub = induced_subtopology(topology, keep=[1, 2])
        assert sub.as_ids() == (1, 2)
        assert sub.num_links == 1
        # Interfaces that only attached dropped links are pruned.
        assert sub.as_info(1).interface_ids() == (1,)

    def test_contains_and_iteration(self):
        topology = simple_triangle()
        assert 1 in topology
        assert 99 not in topology
        assert [info.as_id for info in topology] == [1, 2, 3]
