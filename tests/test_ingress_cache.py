"""Coverage for the ingress gateway's verified-prefix cache.

Three properties the fast path must never lose:

* the cache is **bounded** — insertion past ``max_entries`` evicts the
  oldest entries, and a non-positive bound disables caching entirely,
* the cache is **invalidated when the key store changes** — a cached
  prefix only proves verification against the *old* keys, so replacing the
  verifier through :meth:`IngressGateway.use_verifier` must clear it (and
  beacons signed under the old keys must be rejected afterwards), and
* a **tampered extension of a verified prefix is still rejected** — a
  cache hit on the prefix must not leak trust into the new entries.
"""

from dataclasses import replace

import pytest

from repro.core.beacon import BeaconBuilder
from repro.core.ingress import IngressGateway, VerifiedPrefixCache
from repro.crypto.keys import KeyStore
from repro.crypto.signer import Signer, Verifier

from tests.conftest import make_beacon


def two_hop_beacon(key_store, created_at_ms=0.0):
    return make_beacon(
        key_store,
        hops=[(10, None, 1), (11, 2, 1)],
        created_at_ms=created_at_ms,
    )


def extend(beacon, key_store, as_id=12):
    builder = BeaconBuilder(as_id=as_id, signer=Signer(as_id=as_id, key_store=key_store))
    return builder.extend(beacon, ingress_interface=2, egress_interface=1)


class TestCacheBound:
    def test_eviction_at_the_size_bound_is_fifo(self):
        cache = VerifiedPrefixCache(max_entries=3)
        for index in range(5):
            cache.add(f"digest-{index}")
        assert len(cache) == 3
        assert "digest-0" not in cache and "digest-1" not in cache
        assert all(f"digest-{index}" in cache for index in (2, 3, 4))

    def test_re_adding_known_digest_does_not_evict(self):
        cache = VerifiedPrefixCache(max_entries=2)
        cache.add("a")
        cache.add("b")
        cache.add("a")  # already present: no insertion, no eviction
        assert "a" in cache and "b" in cache

    def test_non_positive_bound_disables_caching(self):
        cache = VerifiedPrefixCache(max_entries=0)
        cache.add("a")
        assert len(cache) == 0

        key_store = KeyStore()
        gateway = IngressGateway(
            as_id=999,
            verifier=Verifier(key_store=key_store),
            verified_prefixes=VerifiedPrefixCache(max_entries=0),
        )
        beacon = two_hop_beacon(key_store)
        assert gateway.receive(beacon, on_interface=1, now_ms=0.0)
        child = extend(beacon, key_store)
        assert gateway.receive(child, on_interface=1, now_ms=0.0)
        # Without a cache every verification is a full one.
        assert gateway.stats.full_verifications == 2
        assert gateway.stats.incremental_verifications == 0

    def test_gateway_respects_tiny_bound(self):
        key_store = KeyStore()
        gateway = IngressGateway(
            as_id=999,
            verifier=Verifier(key_store=key_store),
            verified_prefixes=VerifiedPrefixCache(max_entries=2),
        )
        for index in range(4):
            beacon = two_hop_beacon(key_store, created_at_ms=float(index))
            assert gateway.receive(beacon, on_interface=1, now_ms=float(index))
        assert len(gateway.verified_prefixes) <= 2


class TestKeyStoreChangeInvalidation:
    def test_use_verifier_clears_the_cache(self):
        key_store = KeyStore()
        gateway = IngressGateway(as_id=999, verifier=Verifier(key_store=key_store))
        beacon = two_hop_beacon(key_store)
        assert gateway.receive(beacon, on_interface=1, now_ms=0.0)
        assert len(gateway.verified_prefixes) > 0

        rotated = KeyStore(deployment_secret=b"rotated-secret")
        gateway.use_verifier(Verifier(key_store=rotated))
        assert len(gateway.verified_prefixes) == 0

    def test_old_key_extension_rejected_after_rotation(self):
        old_store = KeyStore(deployment_secret=b"old")
        new_store = KeyStore(deployment_secret=b"new")
        gateway = IngressGateway(as_id=999, verifier=Verifier(key_store=old_store))

        beacon = two_hop_beacon(old_store)
        assert gateway.receive(beacon, on_interface=1, now_ms=0.0)

        # Key store rotates; an extension whose *new* entry is signed under
        # the new keys but whose prefix is only valid under the old ones
        # arrives.  With a stale cache the prefix would be trusted and only
        # the (valid) new entry checked — the rotation-aware gateway must
        # re-verify the whole chain and reject it.
        gateway.use_verifier(Verifier(key_store=new_store))
        forged = extend(beacon, new_store)
        assert not gateway.receive(forged, on_interface=1, now_ms=0.0)
        assert gateway.stats.rejected_signature == 1

        # Beacons fully signed under the new keys are accepted as usual.
        fresh = two_hop_beacon(new_store, created_at_ms=1.0)
        assert gateway.receive(fresh, on_interface=1, now_ms=1.0)


class TestTamperedExtensionStillRejected:
    def test_tampered_extension_of_cached_prefix_rejected(self):
        key_store = KeyStore()
        gateway = IngressGateway(as_id=999, verifier=Verifier(key_store=key_store))
        beacon = two_hop_beacon(key_store)
        assert gateway.receive(beacon, on_interface=1, now_ms=0.0)

        child = extend(beacon, key_store)
        entry = child.entries[-1]
        tampered_entry = replace(
            entry,
            static_info=replace(
                entry.static_info,
                intra_latency_ms=entry.static_info.intra_latency_ms + 5.0,
            ),
        )
        tampered = replace(child, entries=child.entries[:-1] + (tampered_entry,))
        assert not gateway.receive(tampered, on_interface=1, now_ms=0.0)
        assert gateway.stats.rejected_signature == 1
        # The genuine extension is still accepted, via the cached prefix.
        assert gateway.receive(child, on_interface=1, now_ms=0.0)
        assert gateway.stats.incremental_verifications >= 1
