"""Tests of the adversarial & gray-failure event family (PR 7).

Covers timeline validation of the new events (unknown targets, malformed
flap schedules), the behavioural contracts of each family — gray failures
stay invisible to the control plane, flaps produce loud failure/recovery
cycles plus directional loss, forged and replayed revocations never
withdraw a path, suppressors swallow floods, topology growth brings a
live newcomer — and the driver-level scheduling checks.
"""

import random

import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.events import (
    ForwardingSuppression,
    GrayFailure,
    GrayRecovery,
    LinkFlap,
    RevocationForgery,
    RevocationReplay,
    ScenarioTimeline,
    TopologyGrowth,
    byzantine_attack,
    flapping_links,
    gray_failures,
    growth_churn,
)
from repro.simulation.failures import LinkState
from repro.simulation.scenario import don_scenario
from repro.units import minutes

from tests.conftest import line_topology


def _link(topology, index):
    return topology.link_ids()[index]


def _run(topology, scenario, pairs=()):
    simulation = BeaconingSimulation(topology, scenario)
    for source, destination in pairs:
        simulation.watch_pair(source, destination)
    return simulation.run()


def _aggregate(result, counter):
    return sum(getattr(s.revocations, counter) for s in result.services.values())


class TestEventConstruction:
    def test_flap_schedule_must_be_strictly_increasing(self):
        link = ((1, 1), (2, 1))
        with pytest.raises(ConfigurationError):
            LinkFlap(link_id=link, schedule=(100.0, 100.0))
        with pytest.raises(ConfigurationError):
            LinkFlap(link_id=link, schedule=(200.0, 100.0))

    def test_flap_schedule_rejects_negative_offsets(self):
        with pytest.raises(ConfigurationError):
            LinkFlap(link_id=((1, 1), (2, 1)), schedule=(-1.0, 100.0))

    def test_flap_without_schedule_needs_duration(self):
        link = ((1, 1), (2, 1))
        with pytest.raises(ConfigurationError):
            LinkFlap(link_id=link, schedule=(), duration_ms=None)
        LinkFlap(link_id=link, schedule=(), duration_ms=50.0, loss_ab=0.2)

    def test_flap_ends_down_reflects_schedule_parity(self):
        link = ((1, 1), (2, 1))
        assert LinkFlap(link_id=link, schedule=(0.0,)).ends_down
        assert not LinkFlap(link_id=link, schedule=(0.0, 10.0)).ends_down

    def test_gray_failure_rejects_out_of_range_rate(self):
        link = ((1, 1), (2, 1))
        with pytest.raises(ConfigurationError):
            GrayFailure(link_id=link, drop_rate=0.0)
        with pytest.raises(ConfigurationError):
            GrayFailure(link_id=link, drop_rate=1.5)

    def test_growth_rejects_self_attachment_and_empty_attach(self):
        with pytest.raises(ConfigurationError):
            TopologyGrowth(new_as=9, attach_to=())
        with pytest.raises(ConfigurationError):
            TopologyGrowth(new_as=9, attach_to=(9,))
        with pytest.raises(ConfigurationError):
            TopologyGrowth(new_as=9, attach_to=(1, 1))

    def test_forgery_count_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RevocationForgery(
                attacker_as=1, claimed_origin=2, link_id=((2, 1), (3, 1)), count=0
            )


class TestTimelineValidation:
    """Satellite: ``validate(topology)`` rejects unknown adversarial targets."""

    def test_flap_of_unknown_link_rejected(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=2)
        scenario.at(minutes(5)).flap_link(((8, 1), (9, 1)), schedule=(0.0, 10.0))
        with pytest.raises(ConfigurationError):
            scenario.timeline.validate(topology)

    def test_gray_failure_of_unknown_link_rejected(self):
        topology = line_topology(3)
        timeline = ScenarioTimeline()
        timeline.at(minutes(5)).gray_fail(((8, 1), (9, 1)))
        with pytest.raises(ConfigurationError):
            timeline.validate(topology)

    def test_gray_recovery_needs_earlier_gray_failure(self):
        topology = line_topology(3)
        timeline = ScenarioTimeline()
        timeline.at(minutes(5)).gray_recover(_link(topology, 0))
        with pytest.raises(ConfigurationError):
            timeline.validate(topology)
        fixed = ScenarioTimeline()
        fixed.at(minutes(2)).gray_fail(_link(topology, 0))
        fixed.at(minutes(5)).gray_recover(_link(topology, 0))
        fixed.validate(topology)

    def test_forgery_from_unknown_attacker_rejected(self):
        topology = line_topology(3)
        timeline = ScenarioTimeline()
        timeline.at(minutes(5)).forge_revocation(
            attacker_as=99, claimed_origin=1, link_id=_link(topology, 0)
        )
        with pytest.raises(ConfigurationError):
            timeline.validate(topology)

    def test_replay_and_suppression_targets_must_exist(self):
        topology = line_topology(3)
        timeline = ScenarioTimeline()
        timeline.at(minutes(5)).replay_revocations(attacker_as=99)
        with pytest.raises(ConfigurationError):
            timeline.validate(topology)
        timeline = ScenarioTimeline()
        timeline.at(minutes(5)).suppress_forwarding((2, 99))
        with pytest.raises(ConfigurationError):
            timeline.validate(topology)

    def test_growth_of_existing_as_rejected(self):
        topology = line_topology(3)
        timeline = ScenarioTimeline()
        timeline.at(minutes(5)).grow_as(2, attach_to=(1,))
        with pytest.raises(ConfigurationError):
            timeline.validate(topology)

    def test_growth_attached_to_unknown_as_rejected(self):
        topology = line_topology(3)
        timeline = ScenarioTimeline()
        timeline.at(minutes(5)).grow_as(9, attach_to=(42,))
        with pytest.raises(ConfigurationError):
            timeline.validate(topology)

    def test_grown_as_is_valid_target_for_later_events(self):
        """Events may target an AS that earlier growth introduces."""
        topology = line_topology(3)
        timeline = ScenarioTimeline()
        timeline.at(minutes(5)).grow_as(9, attach_to=(2, 3))
        timeline.at(minutes(10)).suppress_forwarding((9,))
        timeline.validate(topology)


class TestGrayFailureBehaviour:
    def test_gray_drops_are_silent(self):
        """Messages vanish, yet no revocation originates and paths linger."""
        topology = line_topology(4)
        scenario = don_scenario(periods=4)
        scenario.loss_seed = 5
        link = _link(topology, 1)  # the 2-3 link
        scenario.at(minutes(15)).gray_fail(link, drop_rate=1.0)

        result = _run(topology, scenario, pairs=[(4, 1)])

        assert result.collector.gray_dropped_total() > 0
        assert result.collector.total_revocations == 0
        assert _aggregate(result, "originated") == 0
        # The control plane still believes the link is up ...
        assert result.link_state.link_available(link)
        assert not result.convergence.records
        # ... and the stale paths crossing it are still registered.
        assert any(
            link in path.segment.links()
            for path in result.service(4).path_service.all_paths()
        )

    def test_gray_recovery_restores_delivery(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=4)
        scenario.loss_seed = 5
        link = _link(topology, 0)
        scenario.at(minutes(12)).gray_fail(link, drop_rate=1.0)
        scenario.at(minutes(18)).gray_recover(link)

        result = _run(topology, scenario)

        assert result.collector.gray_dropped_total() > 0
        assert not result.link_state.gray_links  # cleared by the recovery
        assert result.link_state.drop_probability(link, link[0][0]) == 0.0

    def test_partial_drop_rate_is_seeded(self):
        """Same loss seed ⇒ identical gray-drop counts; the dice are owned."""
        counts = []
        for _attempt in range(2):
            topology = line_topology(3)
            scenario = don_scenario(periods=4)
            scenario.loss_seed = 77
            scenario.at(minutes(12)).gray_fail(_link(topology, 0), drop_rate=0.5)
            result = _run(topology, scenario)
            counts.append(result.collector.gray_dropped_total())
        assert counts[0] == counts[1]
        assert counts[0] > 0


class TestLinkFlapBehaviour:
    def test_flap_produces_loud_failure_and_recovery(self):
        """Each down toggle floods revocations; the link ends up again."""
        topology = line_topology(4)
        scenario = don_scenario(periods=5)
        link = _link(topology, 1)
        scenario.at(minutes(15)).flap_link(
            link, schedule=(0.0, minutes(5), minutes(10), minutes(15))
        )

        result = _run(topology, scenario, pairs=[(4, 1)])

        assert result.collector.total_revocations > 0
        assert result.link_state.is_link_up(link)
        assert not result.link_state.failed_links

    def test_flap_loss_rates_are_cleared_after_schedule(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=5)
        scenario.loss_seed = 3
        link = _link(topology, 0)
        # Up during [17, 23] min with loss active: the period boundary at
        # minute 20 sends PCBs into the loss dice.
        scenario.at(minutes(15)).flap_link(
            link, schedule=(0.0, minutes(2), minutes(8), minutes(10)),
            loss_ab=1.0, loss_ba=1.0,
        )

        result = _run(topology, scenario)

        assert result.collector.gray_dropped_total() > 0  # loss dice fired
        assert not result.link_state.link_loss  # cleared at schedule end

    def test_flapping_links_generator_is_topology_validated(self):
        topology = line_topology(4)
        events = flapping_links(
            topology, count=2, rng=random.Random(9), start_ms=minutes(5)
        )
        timeline = ScenarioTimeline().extend(events)
        timeline.validate(topology)  # all generated targets are real links


class TestByzantineRevocations:
    def test_forged_revocations_never_withdraw_a_path(self):
        """Counter-pinned acceptance: every forged copy dies rejected_invalid."""
        topology = line_topology(4)
        scenario = don_scenario(periods=4, verify_signatures=True)
        scenario.at(minutes(15)).forge_revocation(
            attacker_as=4, claimed_origin=1, link_id=_link(topology, 0), count=2
        )

        result = _run(topology, scenario, pairs=[(4, 1)])

        received = _aggregate(result, "received")
        assert received > 0
        assert _aggregate(result, "rejected_invalid") == received
        # No withdrawal anywhere: the forgery applied at no AS.
        for service in result.services.values():
            assert service.revocations.applied_at == {}
        # The victim pair's registered paths survived untouched.
        assert result.service(4).path_service.paths_to(1)
        assert not result.convergence.records

    def test_forgery_succeeds_when_verification_is_disabled(self):
        """The scenario knob: what signature checking actually buys."""
        topology = line_topology(4)
        scenario = don_scenario(periods=4, verify_signatures=False)
        scenario.at(minutes(15)).forge_revocation(
            attacker_as=4, claimed_origin=1, link_id=_link(topology, 0), count=1
        )

        result = _run(topology, scenario)

        assert _aggregate(result, "rejected_invalid") == 0
        assert any(
            service.revocations.applied_at for service in result.services.values()
        )

    def test_replayed_revocations_die_as_duplicates(self):
        topology = line_topology(4)
        link = _link(topology, 0)

        def run(replays):
            scenario = don_scenario(periods=5, verify_signatures=True)
            scenario.at(minutes(15)).fail_link(link)
            if replays:
                scenario.at(minutes(16)).replay_revocations(
                    attacker_as=4, count=replays
                )
            return _run(line_topology(4), scenario)

        baseline = run(replays=0)
        attacked = run(replays=2)
        assert _aggregate(attacked, "duplicates") > _aggregate(baseline, "duplicates")
        # The replay re-applied nothing: the same withdrawals as baseline.
        assert sum(
            len(s.revocations.applied_at) for s in attacked.services.values()
        ) == sum(len(s.revocations.applied_at) for s in baseline.services.values())

    def test_suppressor_swallows_the_flood(self):
        """ASes behind a suppressor never hear about the failure."""
        topology = line_topology(5)
        scenario = don_scenario(periods=5)
        scenario.at(minutes(5)).suppress_forwarding((3,))
        scenario.at(minutes(15)).fail_link(_link(topology, 0))  # the 1-2 link

        result = _run(topology, scenario)

        suppressor = result.service(3).revocations
        assert suppressor.applied_at  # still applies what it receives ...
        assert suppressor.forwarded == 0  # ... but re-forwards nothing
        assert result.service(4).revocations.received == 0
        assert result.service(5).revocations.received == 0

    def test_suppression_can_be_lifted(self):
        topology = line_topology(5)
        scenario = don_scenario(periods=6)
        scenario.at(minutes(5)).suppress_forwarding((3,))
        scenario.at(minutes(10)).suppress_forwarding((3,), suppress=False)
        scenario.at(minutes(15)).fail_link(_link(topology, 0))

        result = _run(topology, scenario)

        assert result.service(3).revocations.forwarded > 0
        assert result.service(4).revocations.received > 0

    def test_byzantine_attack_generator_requires_some_behaviour(self):
        with pytest.raises(ConfigurationError):
            byzantine_attack(
                attacker_as=1,
                claimed_origin=2,
                link_id=((2, 1), (3, 1)),
                at_ms=minutes(5),
                forgeries=0,
                replays=0,
                suppress=False,
            )


class TestTopologyGrowth:
    def test_grown_as_becomes_a_live_participant(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=5)
        scenario.at(minutes(15)).grow_as(9, attach_to=(2, 3))

        result = _run(topology, scenario, pairs=[(3, 1)])

        assert 9 in result.topology
        assert 9 in result.services
        # Both customer-provider attachment links exist and are live.
        grown_links = [
            link
            for link in result.topology.link_ids()
            if 9 in (link[0][0], link[1][0])
        ]
        assert len(grown_links) == 2
        # The newcomer originates beacons / registers paths after joining.
        assert result.service(9).path_service.all_paths()

    def test_neighbors_learn_the_new_interface(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=5)
        scenario.at(minutes(15)).grow_as(9, attach_to=(2,))

        result = _run(topology, scenario)

        neighbor = result.service(2)
        new_link = next(
            link
            for link in result.topology.link_ids()
            if 9 in (link[0][0], link[1][0])
        )
        endpoint_a, endpoint_b = new_link
        neighbor_as, neighbor_if = endpoint_a if endpoint_a[0] == 2 else endpoint_b
        assert neighbor_as == 2
        assert neighbor.view.link_of(neighbor_if) is result.topology.links[new_link]

    def test_growth_churn_generator_allocates_fresh_ids(self):
        topology = line_topology(4)
        events = growth_churn(
            topology,
            count=2,
            rng=random.Random(3),
            start_ms=minutes(5),
            spacing_ms=minutes(5),
        )
        new_ids = [timed.event.new_as for timed in events]
        assert new_ids == [5, 6]  # continue past the current maximum
        ScenarioTimeline().extend(events).validate(topology)

    def test_driver_rejects_byzantine_target_missing_from_topology(self):
        """The driver's own scheduling check mirrors timeline validation."""
        topology = line_topology(3)
        scenario = don_scenario(periods=2)
        scenario.timeline.at(minutes(5)).replay_revocations(attacker_as=77)
        with pytest.raises((ConfigurationError, SimulationError)):
            BeaconingSimulation(topology, scenario).run()


class TestLinkStateDegradation:
    def test_drop_probability_composes_gray_and_directional_loss(self):
        state = LinkState()
        link = ((1, 1), (2, 1))
        state.set_gray(link, 0.5)
        state.set_link_loss(link, toward_as=2, rate=0.5)
        assert state.drop_probability(link, 2) == pytest.approx(0.75)
        assert state.drop_probability(link, 1) == pytest.approx(0.5)
        assert state.silent_loss(link) == pytest.approx(0.75)

    def test_degradation_is_invisible_to_availability(self):
        state = LinkState()
        link = ((1, 1), (2, 1))
        state.set_gray(link, 1.0)
        assert state.degraded()
        assert not state.impaired()
        assert state.link_available(link)
        assert state.path_available([link])

    def test_zero_rate_clears_directional_loss(self):
        state = LinkState()
        link = ((1, 1), (2, 1))
        state.set_link_loss(link, toward_as=2, rate=0.3)
        state.set_link_loss(link, toward_as=2, rate=0.0)
        assert not state.degraded()
