"""Tests for PCB extensions and static-info records."""

import pytest

from repro.core.extensions import (
    AlgorithmExtension,
    ExtensionSet,
    InterfaceGroupExtension,
    TargetExtension,
)
from repro.core.staticinfo import StaticInfo
from repro.exceptions import ExtensionError
from repro.topology.geo import GeoCoordinate


class TestStaticInfo:
    def test_hop_latency_sums_intra_and_link(self):
        info = StaticInfo(intra_latency_ms=3.0, link_latency_ms=7.0)
        assert info.hop_latency_ms == 10.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            StaticInfo(intra_latency_ms=-1.0)
        with pytest.raises(ValueError):
            StaticInfo(link_latency_ms=-1.0)
        with pytest.raises(ValueError):
            StaticInfo(link_bandwidth_mbps=0.0)

    def test_encode_includes_geo(self):
        info = StaticInfo(egress_location=GeoCoordinate(1.0, 2.0))
        assert "1.000000,2.000000" in info.encode()

    def test_encode_differs_by_content(self):
        assert StaticInfo(link_latency_ms=1.0).encode() != StaticInfo(link_latency_ms=2.0).encode()


class TestIndividualExtensions:
    def test_target_encoding(self):
        assert TargetExtension(target_as=7).encode() == "target(7)"

    def test_algorithm_requires_fields(self):
        with pytest.raises(ExtensionError):
            AlgorithmExtension(algorithm_id="", code_hash="ab")
        with pytest.raises(ExtensionError):
            AlgorithmExtension(algorithm_id="x", code_hash="")

    def test_interface_group_rejects_negative(self):
        with pytest.raises(ExtensionError):
            InterfaceGroupExtension(group_id=-1)


class TestExtensionSet:
    def test_empty_set_properties(self):
        extensions = ExtensionSet()
        assert not extensions.is_pull_based
        assert not extensions.is_on_demand
        assert extensions.encode() == "ext[]"

    def test_with_target(self):
        extensions = ExtensionSet().with_target(5)
        assert extensions.is_pull_based
        assert extensions.target.target_as == 5

    def test_with_algorithm(self):
        extensions = ExtensionSet().with_algorithm("id", "hash")
        assert extensions.is_on_demand
        assert extensions.algorithm.algorithm_id == "id"

    def test_with_interface_group(self):
        extensions = ExtensionSet().with_interface_group(2)
        assert extensions.interface_group.group_id == 2

    def test_at_most_one_of_each_kind(self):
        extensions = ExtensionSet().with_target(5)
        with pytest.raises(ExtensionError):
            extensions.with_target(6)
        extensions = ExtensionSet().with_algorithm("a", "h")
        with pytest.raises(ExtensionError):
            extensions.with_algorithm("b", "h")
        extensions = ExtensionSet().with_interface_group(1)
        with pytest.raises(ExtensionError):
            extensions.with_interface_group(2)

    def test_combination_preserves_existing(self):
        extensions = (
            ExtensionSet().with_target(5).with_algorithm("a", "h").with_interface_group(3)
        )
        assert extensions.target.target_as == 5
        assert extensions.algorithm.algorithm_id == "a"
        assert extensions.interface_group.group_id == 3
        encoded = extensions.encode()
        assert "target(5)" in encoded
        assert "algorithm(a,h)" in encoded
        assert "ifgroup(3)" in encoded
