"""Tests for the discrete-event engine, simulated transport and beaconing driver."""

import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation.beaconing import BeaconingSimulation
from repro.simulation.collector import MetricsCollector
from repro.simulation.engine import EventScheduler
from repro.simulation.network import SimulatedTransport
from repro.simulation.scenario import (
    AlgorithmSpec,
    ScenarioConfig,
    disjointness_scenario,
    dob_scenario,
    don_scenario,
    one_shortest_path_spec,
    paper_algorithm_suite,
)
from repro.topology.generator import generate_topology, small_test_config

from tests.conftest import line_topology


class TestEventScheduler:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(20.0, lambda now: order.append(("b", now)))
        scheduler.schedule_at(10.0, lambda now: order.append(("a", now)))
        scheduler.schedule_at(30.0, lambda now: order.append(("c", now)))
        processed = scheduler.run_until(25.0)
        assert processed == 2
        assert [label for label, _now in order] == ["a", "b"]
        assert scheduler.now_ms == 25.0
        scheduler.run_until(100.0)
        assert [label for label, _now in order] == ["a", "b", "c"]

    def test_tie_break_is_fifo(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(10.0, lambda now: order.append("first"))
        scheduler.schedule_at(10.0, lambda now: order.append("second"))
        scheduler.run_all()
        assert order == ["first", "second"]

    def test_schedule_in_past_rejected(self):
        scheduler = EventScheduler(now_ms=50.0)
        with pytest.raises(SimulationError):
            scheduler.schedule_at(10.0, lambda now: None)
        with pytest.raises(SimulationError):
            scheduler.schedule_in(-1.0, lambda now: None)

    def test_cancel(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule_at(10.0, lambda now: fired.append(now))
        scheduler.cancel(event)
        scheduler.run_all()
        assert fired == []
        assert scheduler.pending == 0

    def test_run_all_guard(self):
        scheduler = EventScheduler()

        def reschedule(now):
            scheduler.schedule_in(1.0, reschedule)

        scheduler.schedule_in(1.0, reschedule)
        with pytest.raises(SimulationError):
            scheduler.run_all(max_events=10)

    def test_peek_next_time(self):
        scheduler = EventScheduler()
        assert scheduler.peek_next_time() is None
        scheduler.schedule_at(5.0, lambda now: None)
        assert scheduler.peek_next_time() == 5.0


class TestMetricsCollector:
    def test_binning_by_period(self):
        collector = MetricsCollector(period_ms=100.0)
        collector.record_send(1, 1, 10.0)
        collector.record_send(1, 1, 20.0)
        collector.record_send(1, 1, 150.0)
        collector.record_send(2, 1, 150.0)
        assert collector.count_for((1, 1), 0) == 2
        assert collector.count_for((1, 1), 1) == 1
        assert collector.total_sent == 4
        assert sorted(collector.pcbs_per_interface_per_period()) == [1, 1, 2]
        assert collector.per_interface_totals()[(1, 1)] == 3
        assert collector.periods_observed() == 2

    def test_returns_and_fetches(self):
        collector = MetricsCollector(period_ms=100.0)
        collector.record_return(3, 10.0)
        collector.record_algorithm_fetch()
        assert collector.returned_beacons() == 1
        assert collector.algorithm_fetches() == 1
        collector.reset()
        assert collector.total_sent == 0
        assert collector.returned_beacons() == 0


class TestScenarioConfig:
    def test_static_spec_needs_factory(self):
        with pytest.raises(ConfigurationError):
            AlgorithmSpec(rac_id="broken")

    def test_scenario_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(algorithms=())
        with pytest.raises(ConfigurationError):
            ScenarioConfig(algorithms=(one_shortest_path_spec(),), periods=0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(
                algorithms=(one_shortest_path_spec(),), propagation_interval_ms=0.0
            )

    def test_paper_suite_contains_expected_racs(self):
        suite = paper_algorithm_suite()
        ids = [spec.rac_id for spec in suite]
        assert ids == ["1sp", "5sp", "hd", "don", "on-demand"]
        assert suite[-1].on_demand

    def test_prebuilt_scenarios(self):
        assert {spec.rac_id for spec in don_scenario().algorithms} == {"1sp", "5sp", "don"}
        assert any(spec.rac_id == "dob300" for spec in dob_scenario(300).algorithms)
        assert any(spec.on_demand for spec in disjointness_scenario().algorithms)


class TestBeaconingSimulation:
    def test_registered_paths_appear_and_overhead_recorded(self, small_topology):
        scenario = don_scenario(periods=2, verify_signatures=False)
        simulation = BeaconingSimulation(small_topology, scenario)
        result = simulation.run()
        assert result.periods_run == 2
        assert result.collector.total_sent > 0
        # Every AS should have registered at least one path to some origin.
        some_as = small_topology.as_ids()[-1]
        assert len(result.service(some_as).path_service.all_paths()) > 0
        assert result.collector.periods_observed() >= 1

    def test_simulation_is_deterministic(self, small_topology):
        scenario = don_scenario(periods=2, verify_signatures=False)
        first = BeaconingSimulation(small_topology, scenario).run()
        second = BeaconingSimulation(
            generate_topology(small_test_config()), don_scenario(periods=2, verify_signatures=False)
        ).run()
        assert first.collector.total_sent == second.collector.total_sent

    def test_signature_verification_mode(self):
        topology = line_topology(3)
        scenario = don_scenario(periods=2, verify_signatures=True)
        result = BeaconingSimulation(topology, scenario).run()
        assert result.service(3).path_service.paths_to(1)

    def test_link_delay_respected_in_delivery_times(self):
        topology = line_topology(3, latency_ms=50.0)
        scenario = don_scenario(periods=1, verify_signatures=False)
        simulation = BeaconingSimulation(topology, scenario)
        simulation.run()
        # The scheduler processed delivery events strictly after origination.
        assert simulation.scheduler.processed_events > 0

    def test_mixed_legacy_deployment(self):
        topology = line_topology(4)
        scenario = ScenarioConfig(
            algorithms=(one_shortest_path_spec(),),
            periods=3,
            verify_signatures=False,
            legacy_ases=(2,),
        )
        result = BeaconingSimulation(topology, scenario).run()
        # Paths still traverse the legacy AS 2, proving interoperability.
        paths = result.service(4).path_service.paths_to(1)
        assert paths
        assert paths[0].segment.as_path() == (1, 2, 3, 4)

    def test_pull_orchestrator_requires_irec_as(self):
        topology = line_topology(3)
        scenario = ScenarioConfig(
            algorithms=(one_shortest_path_spec(),),
            periods=1,
            verify_signatures=False,
            legacy_ases=(1,),
        )
        simulation = BeaconingSimulation(topology, scenario)
        with pytest.raises(ConfigurationError):
            simulation.add_pull_disjointness(origin_as=1, target_as=3)

    def test_unknown_as_lookup(self, small_topology):
        scenario = don_scenario(periods=1, verify_signatures=False)
        result = BeaconingSimulation(small_topology, scenario).run()
        from repro.exceptions import UnknownASError

        with pytest.raises(UnknownASError):
            result.service(10_000)


class TestSimulatedTransport:
    def test_immediate_delivery_mode(self, small_topology, key_store):
        from repro.core.local_view import LocalTopologyView
        from repro.core.control_service import IrecControlService
        from repro.algorithms.shortest_path import KShortestPathAlgorithm

        scheduler = EventScheduler()
        transport = SimulatedTransport(
            topology=small_topology, scheduler=scheduler, deliver_immediately=True
        )
        services = {}
        for as_info in small_topology:
            view = LocalTopologyView.from_topology(small_topology, as_info.as_id)
            service = IrecControlService(view=view, key_store=key_store, transport=transport)
            service.add_static_rac(rac_id="1sp", algorithm=KShortestPathAlgorithm(k=1))
            services[as_info.as_id] = service
            transport.register(service)
        origin = services[small_topology.as_ids()[0]]
        origin.originate(now_ms=0.0)
        assert transport.collector.total_sent > 0
        # With immediate delivery, neighbours already hold the beacons.
        neighbor = small_topology.neighbors(origin.as_id)[0]
        assert len(services[neighbor].ingress.database) > 0
