"""Tests for the synthetic topology generator and the geo-rel format."""

import pytest

from repro.exceptions import ConfigurationError, TopologyError
from repro.topology import caida
from repro.topology.entities import Relationship
from repro.topology.generator import (
    TopologyConfig,
    generate_topology,
    paper_scale_config,
    small_test_config,
)
from repro.topology.geo import GeoCoordinate


class TestTopologyConfig:
    def test_default_config_is_valid(self):
        TopologyConfig().validate()

    def test_core_plus_transit_must_fit(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(num_ases=5, num_core=3, num_transit=5).validate()

    def test_peering_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(peering_probability=1.5).validate()

    def test_bandwidth_range(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(min_bandwidth_mbps=100.0, max_bandwidth_mbps=10.0).validate()

    def test_needs_core(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(num_core=0).validate()


class TestGenerateTopology:
    def test_deterministic_given_seed(self):
        a = generate_topology(small_test_config(seed=3))
        b = generate_topology(small_test_config(seed=3))
        assert a.as_ids() == b.as_ids()
        assert set(a.links) == set(b.links)

    def test_different_seeds_differ(self):
        a = generate_topology(small_test_config(seed=3))
        b = generate_topology(small_test_config(seed=4))
        assert set(a.links) != set(b.links)

    def test_connected(self):
        topology = generate_topology(small_test_config())
        assert topology.is_connected()

    def test_as_count_matches_config(self):
        config = small_test_config()
        topology = generate_topology(config)
        assert topology.num_ases == config.num_ases

    def test_core_is_meshed(self):
        config = small_test_config()
        topology = generate_topology(config)
        for a in range(1, config.num_core + 1):
            for b in range(a + 1, config.num_core + 1):
                assert topology.relationship(a, b) is Relationship.CORE

    def test_stubs_have_providers(self):
        config = small_test_config()
        topology = generate_topology(config)
        first_stub = config.num_core + config.num_transit + 1
        for as_id in range(first_stub, config.num_ases + 1):
            assert len(topology.providers_of(as_id)) >= 1

    def test_heavy_tail_core_degree_exceeds_stub_degree(self):
        config = small_test_config()
        topology = generate_topology(config)
        core_degrees = [topology.degree_of(a) for a in range(1, config.num_core + 1)]
        stub_degrees = [
            topology.degree_of(a)
            for a in range(config.num_core + config.num_transit + 1, config.num_ases + 1)
        ]
        assert max(core_degrees) > max(stub_degrees)

    def test_link_latency_positive_and_geo_consistent(self):
        topology = generate_topology(small_test_config())
        for link in topology.links.values():
            assert link.latency_ms > 0.0
            assert link.bandwidth_mbps > 0.0

    def test_paper_scale_config_shape(self):
        config = paper_scale_config()
        config.validate()
        assert config.num_ases == 500


class TestCaidaFormat:
    def test_parse_line_roundtrip(self):
        record = caida.GeoRelRecord(
            as_a=10,
            as_b=20,
            relationship=Relationship.CUSTOMER_PROVIDER,
            location_a=GeoCoordinate(47.0, 8.0),
            location_b=GeoCoordinate(48.0, 9.0),
            bandwidth_mbps=5000.0,
        )
        parsed = caida.parse_line(caida.format_record(record))
        assert parsed.as_a == 10
        assert parsed.relationship is Relationship.CUSTOMER_PROVIDER
        assert parsed.bandwidth_mbps == pytest.approx(5000.0)

    def test_parse_line_default_bandwidth(self):
        line = "1|2|p2p|47.0|8.0|48.0|9.0"
        record = caida.parse_line(line)
        assert record.bandwidth_mbps == caida.DEFAULT_BANDWIDTH_MBPS

    def test_parse_line_malformed(self):
        with pytest.raises(TopologyError):
            caida.parse_line("1|2|bogus|47.0|8.0|48.0|9.0")
        with pytest.raises(TopologyError):
            caida.parse_line("1|2|p2p")

    def test_parse_lines_skips_comments_and_blanks(self):
        lines = ["# comment", "", "1|2|p2p|47.0|8.0|48.0|9.0"]
        assert len(caida.parse_lines(lines)) == 1

    def test_records_to_topology(self):
        records = caida.parse_lines(
            [
                "1|2|p2c|47.0|8.0|48.0|9.0|1000",
                "2|3|p2p|48.0|9.0|49.0|10.0|2000",
            ]
        )
        topology = caida.records_to_topology(records)
        assert topology.num_ases == 3
        assert topology.num_links == 2
        assert topology.relationship(1, 2) is Relationship.CUSTOMER_PROVIDER

    def test_dump_and_load_roundtrip(self, tmp_path):
        topology = generate_topology(small_test_config())
        path = tmp_path / "topology.georel"
        caida.dump_topology(topology, path)
        loaded = caida.load_topology(path)
        assert loaded.num_ases == topology.num_ases
        assert loaded.num_links == topology.num_links

    def test_topology_to_records_preserves_relationships(self):
        topology = generate_topology(small_test_config())
        records = caida.topology_to_records(topology)
        assert len(records) == topology.num_links
